//! The AutoML controller: FLAML's main loop (paper Figure 3).
//!
//! Step 0 chooses the resampling strategy once; then Steps 1–3 repeat
//! until the budget runs out: sample a learner with probability `∝ 1/ECI`,
//! let its proposer either grow the sample size (when `ECI1 >= ECI2`) or
//! ask FLOW² for new hyperparameters, run the trial, and feed the observed
//! error and cost back into ECI and FLOW². Step-size adaptation and
//! restarts are enabled only at the full sample size; a restart resets the
//! learner's sample size to the initial value.
//!
//! # Parallel execution
//!
//! Trials execute on a [`flaml_exec::ExecPool`] sized by
//! [`AutoMl::workers`]. With one worker (the default) everything runs
//! inline and the trace is identical to the historical sequential
//! controller. With more workers the parallelism goes to one of two
//! places:
//!
//! - **ECI selection** (FLAML proper): the next trial depends on the
//!   previous trial's outcome, so trials stay sequential and the workers
//!   evaluate CV folds concurrently inside each trial.
//! - **Round-robin selection** (the paper's ablation): consecutive
//!   trials touch *different* learners, whose proposals are independent,
//!   so the controller *speculatively* pre-executes the next up-to-`w`
//!   trials on idle workers and commits their results strictly in
//!   submission order. Under a virtual clock the committed trace is
//!   byte-identical at any worker count; speculative trials that a
//!   sequential run would never have started (budget already exhausted
//!   at commit time) are discarded, never fed back.

use crate::automl::{
    AutoMl, AutoMlError, AutoMlResult, LearnerSelection, ResampleChoice, TrialMode, TrialRecord,
};
use crate::clock::{BudgetClock, TrialInfo};
use crate::custom::Estimator;
use crate::dataplane::{DataPlane, PrepStats, TrialData};
use crate::eci::{sample_by_inverse_eci, EciState};
use crate::ensemble::{build_stacked, MemberSpec};
use crate::resample::{run_trial_prepared, ResampleStrategy, TrialOutcome, TrialStatus};
use crate::treecache::{TreeCache, TreeCacheStats, TreeKey, TrialBoost};
use flaml_data::{Dataset, Task};
use flaml_exec::{
    EventSink, ExecPool, FaultPlan, Job, JobResult, JobStatus, TrialEvent, TrialEventKind,
    TrialMeta,
};
use flaml_journal::{
    DatasetInfo, Journal, JournalHeader, JournalWriter, SharedJournalWriter, TrialLine,
    SCHEMA_VERSION,
};
use flaml_metrics::Metric;
use flaml_search::{Config, Flow2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

struct LearnerState {
    kind: Estimator,
    space: flaml_search::SearchSpace,
    flow2: Flow2,
    eci: EciState,
    sample_size: usize,
    /// Consecutive trials of this learner that ended with a non-finite
    /// final error (any status other than a usable value).
    consecutive_failures: usize,
    /// Whether the learner is currently quarantined: the ECI proposer
    /// skips it until the probe iteration arrives.
    quarantined: bool,
    /// Iteration at which a quarantined learner gets its next probe.
    probe_at: usize,
}

/// One proposed-but-not-yet-committed trial.
struct Proposal {
    /// Learner index into `states`.
    li: usize,
    /// 1-based trial number this proposal will commit as.
    trial_no: usize,
    mode: TrialMode,
    trial_s: usize,
    config: Config,
    seed: u64,
    /// Pure function of (learner, config): usable even when the trial
    /// itself panicked before reporting.
    cost_factor: f64,
    expected_fits: usize,
    /// The trial's prepared views and bin artifacts, built by the data
    /// plane at proposal time (on the controller thread, so cache state
    /// advances in deterministic proposal order). `None` during replay,
    /// which never executes.
    data: Option<Arc<TrialData>>,
    /// Cache hit/miss accounting for this trial's preparation.
    prep: PrepStats,
    /// The trial's warm-continuation plan when its fit is eligible for
    /// the tree cache: per-fold keys and cached prefixes, looked up at
    /// proposal time (controller thread, deterministic order). `None`
    /// for ineligible fits, replay, or a disabled cache — those run the
    /// plain fit path.
    boost: Option<TrialBoost>,
    /// Tree-cache hit/miss accounting for this trial's plan.
    tree_prep: TreeCacheStats,
}

/// Builds a trial event carrying a proposal's identity.
fn proposal_event(kind: TrialEventKind, p: &Proposal, learner: &str, config: &str) -> TrialEvent {
    let mut ev = TrialEvent::new(kind);
    ev.job_id = p.trial_no as u64;
    ev.learner = learner.to_string();
    ev.config = config.to_string();
    ev.sample_size = p.trial_s;
    ev
}

/// Turns one attempt's raw [`JobResult`] into a committed
/// [`TrialOutcome`]: folds the job-level status (pool timeout, pool-level
/// panic) into the trial status, applies the fault plan's poison for this
/// attempt, and sanitizes any non-finite loss so nothing downstream
/// (FLOW², ECI, the global best) can ever observe a `NaN`.
fn commit_outcome(
    result: JobResult<TrialOutcome>,
    p: &Proposal,
    fault_plan: Option<FaultPlan>,
    attempt: u32,
) -> (TrialOutcome, f64) {
    let measured = result.wall_secs;
    let trial_timed_out = result.status.timed_out();
    let mut outcome = match result.status {
        JobStatus::Finished(o) | JobStatus::TimedOut(o) => {
            let mut o = o;
            if trial_timed_out && o.status == TrialStatus::Ok {
                o.status = TrialStatus::TimedOut;
            }
            o
        }
        JobStatus::Panicked(msg) => TrialOutcome {
            error: f64::INFINITY,
            model: None,
            n_fits: p.expected_fits,
            cost_factor: p.cost_factor,
            status: TrialStatus::Panicked,
            message: Some(msg),
            fold_states: Vec::new(),
        },
    };
    if let Some(plan) = fault_plan {
        if let Some(bad) = plan.poison(p.trial_no as u64, attempt) {
            outcome.error = bad;
            outcome.model = None;
            outcome.status = TrialStatus::NonFiniteLoss;
            outcome.message = Some(format!(
                "injected fault: poisoned loss ({bad}) on attempt {attempt}"
            ));
        }
    }
    if outcome.error.is_nan() {
        outcome.error = f64::INFINITY;
        if outcome.status == TrialStatus::Ok || outcome.status == TrialStatus::TimedOut {
            outcome.status = TrialStatus::NonFiniteLoss;
        }
    }
    (outcome, measured)
}

/// Verifies that a journal's header matches the run asked to resume
/// from it. The time budget and trial cap are deliberately *not*
/// compared: passing a larger budget is how an interrupted (or even
/// finished) run is extended.
fn verify_resume_header(journal: &JournalHeader, run: &JournalHeader) -> Result<(), AutoMlError> {
    fn check(field: &'static str, journal: String, run: String) -> Result<(), AutoMlError> {
        if journal == run {
            Ok(())
        } else {
            Err(AutoMlError::ResumeMismatch {
                field,
                journal,
                run,
            })
        }
    }
    check("seed", journal.seed.to_string(), run.seed.to_string())?;
    check(
        "sample_size_init",
        journal.sample_size_init.to_string(),
        run.sample_size_init.to_string(),
    )?;
    check(
        "sampling",
        journal.sampling.to_string(),
        run.sampling.to_string(),
    )?;
    check(
        "learner_selection",
        journal.learner_selection.clone(),
        run.learner_selection.clone(),
    )?;
    check("resample", journal.resample.clone(), run.resample.clone())?;
    check("metric", journal.metric.clone(), run.metric.clone())?;
    check(
        "estimators",
        format!("{:?}", journal.estimators),
        format!("{:?}", run.estimators),
    )?;
    check(
        "time_source",
        journal.time_source.clone(),
        run.time_source.clone(),
    )?;
    check(
        "dataset task",
        journal.dataset.task.clone(),
        run.dataset.task.clone(),
    )?;
    check(
        "dataset fingerprint",
        format!("{:#018x}", journal.dataset.fingerprint),
        format!("{:#018x}", run.dataset.fingerprint),
    )?;
    Ok(())
}

/// One divergence check during replay: the re-proposed trial must equal
/// the journaled one in every identifying respect.
fn verify_replay_line(line: &TrialLine, p: &Proposal, learner: &str) -> Result<(), AutoMlError> {
    fn diverged(trial: usize, detail: String) -> AutoMlError {
        AutoMlError::ResumeDiverged { trial, detail }
    }
    if line.iter != p.trial_no {
        return Err(diverged(
            p.trial_no,
            format!(
                "journal records trial {}, replay proposed {}",
                line.iter, p.trial_no
            ),
        ));
    }
    if line.learner != learner {
        return Err(diverged(
            p.trial_no,
            format!(
                "journal learner {:?}, replay proposed {:?}",
                line.learner, learner
            ),
        ));
    }
    if line.mode != p.mode.name() {
        return Err(diverged(
            p.trial_no,
            format!(
                "journal mode {:?}, replay proposed {:?}",
                line.mode,
                p.mode.name()
            ),
        ));
    }
    if line.sample_size != p.trial_s {
        return Err(diverged(
            p.trial_no,
            format!(
                "journal sample size {}, replay proposed {}",
                line.sample_size, p.trial_s
            ),
        ));
    }
    if line.config_values != p.config.values() {
        return Err(diverged(
            p.trial_no,
            format!(
                "journal config {:?}, replay proposed {:?}",
                line.config_values,
                p.config.values()
            ),
        ));
    }
    Ok(())
}

pub(crate) fn run(data: &Dataset, settings: &AutoMl) -> Result<AutoMlResult, AutoMlError> {
    let roster = settings.roster();
    if roster.is_empty() {
        return Err(AutoMlError::NoEstimators);
    }
    let metric = settings
        .metric
        .unwrap_or_else(|| Metric::default_for(data.task()));
    let mut clock = BudgetClock::new(settings.time_source);
    let sink: Option<&EventSink> = settings.event_sink.as_ref();

    // Up-front input validation: fail fast with a typed error on datasets
    // no trial could ever learn from, and degrade gracefully on ones that
    // are salvageable (constant / all-NaN feature columns are dropped,
    // with a telemetry event recording which).
    if data.n_rows() < 2 {
        return Err(AutoMlError::TooFewRows {
            rows: data.n_rows(),
            needed: 2,
        });
    }
    if let Some(classes) = data.distinct_labels() {
        if classes < 2 {
            return Err(AutoMlError::DegenerateTarget {
                classes_present: classes,
            });
        }
    }
    let dropped = data.degenerate_columns();
    let cleaned: Dataset;
    let data: &Dataset = if dropped.is_empty() {
        data
    } else {
        cleaned = data
            .drop_columns(&dropped)
            .map_err(|_| AutoMlError::NoUsableFeatures)?;
        if let Some(sink) = sink {
            let mut ev = TrialEvent::new(TrialEventKind::Sanitized);
            ev.message = Some(format!(
                "dropped {} degenerate feature column(s): {:?}",
                dropped.len(),
                dropped
            ));
            sink.emit(ev);
        }
        &cleaned
    };

    let shuffled = data.shuffled_view(settings.seed);
    let n = shuffled.n_rows();
    let d = shuffled.n_features();

    let strategy = match settings.resample_choice {
        ResampleChoice::Auto => settings.resample_rule.choose(n, d, settings.time_budget),
        ResampleChoice::AlwaysCv => ResampleStrategy::Cv {
            folds: settings.resample_rule.cv_folds,
        },
        ResampleChoice::AlwaysHoldout => ResampleStrategy::Holdout {
            ratio: settings.resample_rule.holdout_ratio,
        },
    };

    // The zero-copy data plane: prepares each trial's views (and, for
    // binned learners, its bin artifacts) on the controller thread at
    // proposal time, memoizing them across trials. Caching is
    // observationally pure — cached artifacts are bit-identical to fresh
    // computation — so traces do not depend on the cache settings.
    let mut plane = DataPlane::new(
        shuffled.clone(),
        strategy,
        settings.prepared_cache,
        settings.prepared_cache_bytes,
    );

    // The cross-trial tree cache: fitted boosting prefixes memoized per
    // (config-without-`tree_num`, sample, fold) and continued by later
    // trials. Like the plane it is owned by the controller thread —
    // lookups at proposal time, store-backs at commit time — and it is
    // observationally pure (continuation is bit-identical to a cold
    // fit), so traces do not depend on it either.
    let mut tree_cache = TreeCache::new(settings.tree_cache, settings.tree_cache_bytes);
    let fingerprint = data.fingerprint();

    let init_s = if settings.sampling {
        settings.sample_size_init.min(n)
    } else {
        n
    };

    // Journal setup: on a fresh run, create the log and durably write its
    // header; on resume, read the old log back (verifying its header
    // against this run), queue its committed trials for replay, and
    // reopen it for appending (truncating any torn tail first). The
    // writer becomes an extra event sink fanned together with the user's.
    let mut replay: VecDeque<TrialLine> = VecDeque::new();
    let storage = settings.storage.clone().unwrap_or_else(flaml_store::disk);
    let mut shared_journal: Option<SharedJournalWriter> = None;
    let journal_sink: Option<EventSink> = if let Some(path) = &settings.journal_path {
        let header = JournalHeader {
            schema_version: SCHEMA_VERSION,
            seed: settings.seed,
            time_budget: settings.time_budget,
            max_trials: settings.header_max_trials.unwrap_or(settings.max_trials),
            sample_size_init: settings.sample_size_init,
            sampling: settings.sampling,
            learner_selection: settings.learner_selection.name().to_string(),
            resample: settings.resample_choice.name().to_string(),
            metric: metric.name().to_string(),
            estimators: roster.iter().map(|e| e.name()).collect(),
            time_source: settings.time_source.name().to_string(),
            dataset: DatasetInfo {
                name: data.name().to_string(),
                task: match data.task() {
                    Task::Binary => "binary".to_string(),
                    Task::MultiClass(k) => format!("multiclass{k}"),
                    Task::Regression => "regression".to_string(),
                },
                rows: n,
                features: d,
                fingerprint: data.fingerprint(),
            },
        };
        let writer = if settings.resume {
            let journal = Journal::read_with(storage.as_ref(), path)?;
            verify_resume_header(&journal.header, &header)?;
            let writer =
                JournalWriter::resume_with(storage.as_ref(), path, journal.committed_bytes)
                    .map_err(AutoMlError::Durability)?;
            replay = journal.trials.into();
            writer
        } else {
            JournalWriter::create_with(storage.as_ref(), path, &header)
                .map_err(AutoMlError::Durability)?
        };
        // Keep a shared handle so a mid-run persistence failure (ENOSPC,
        // failed fsync) surfaces as a typed error after the search loop
        // instead of being silently swallowed by the sink.
        let shared = writer.into_shared();
        let sink = shared.sink();
        shared_journal = Some(shared);
        Some(sink)
    } else {
        None
    };
    let composed_sink: Option<EventSink> = match (settings.event_sink.clone(), journal_sink) {
        (Some(user), Some(journal)) => Some(EventSink::fanout(vec![user, journal])),
        (Some(user), None) => Some(user),
        (None, Some(journal)) => Some(journal),
        (None, None) => None,
    };
    let sink: Option<&EventSink> = composed_sink.as_ref();

    let mut states: Vec<LearnerState> = roster
        .iter()
        .enumerate()
        .map(|(idx, kind)| {
            let space = kind.space(n);
            let mut flow2 = Flow2::new(space.clone(), settings.seed ^ (0x1111 * (idx as u64 + 1)));
            flow2.set_adaptation(init_s >= n);
            LearnerState {
                kind: kind.clone(),
                space,
                flow2,
                // Pre-calibration placeholder; replaced after the first
                // trial measures the base cost.
                eci: EciState::new(kind.cost_constant()),
                sample_size: init_s,
                consecutive_failures: 0,
                quarantined: false,
                probe_at: 0,
            }
        })
        .collect();

    // Warm start: seed FLOW² threads and ECI priors from prior results
    // (typically a previous journal's per-learner best configurations).
    // Applied before any trial, so a resumed run that was originally
    // warm-started replays identically when given the same points.
    for (name, values, loss) in &settings.starting_points {
        if let Some(st) = states.iter_mut().find(|s| s.kind.name() == *name) {
            let config = Config::from(values.clone());
            let point = st.space.encode(&config);
            st.flow2.seed_point(&point);
            st.eci.set_prior_err(*loss);
        }
    }

    let fastest = states
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.kind
                .cost_constant()
                .total_cmp(&b.1.kind.cost_constant())
        })
        .map(|(i, _)| i)
        .expect("non-empty estimators");

    let workers = settings.workers.max(1);
    // Speculation only helps (and is only sound) when consecutive trials
    // are guaranteed to touch different learners: round-robin with at
    // least two learners. Otherwise the workers accelerate CV folds
    // inside each trial instead.
    let speculative = workers > 1
        && settings.learner_selection == LearnerSelection::RoundRobin
        && states.len() > 1;
    let trial_pool = ExecPool::new(if speculative { workers } else { 1 });
    let fold_pool = ExecPool::new(if speculative { 1 } else { workers });

    let mut rng = StdRng::seed_from_u64(settings.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut trials: Vec<TrialRecord> = Vec::new();
    let mut n_retries_total = 0usize;
    let mut n_quarantined = 0usize;
    let mut best: Option<(
        usize,
        Config,
        f64,
        Option<flaml_learners::FittedModel>,
        usize,
    )> = None;
    let mut iter = 0usize;

    'search: loop {
        if let Some(cap) = settings.max_trials {
            if iter >= cap {
                break;
            }
        }
        if iter > 0 && clock.elapsed() >= settings.time_budget {
            break;
        }

        // While journaled trials remain, the controller *replays* instead
        // of executing: proposals are generated exactly as live (so every
        // RNG advances identically), but outcomes and costs come from the
        // journal. Replay commits one trial at a time and emits no
        // events — the records are already on disk.
        let replaying = !replay.is_empty();

        // Steps 1 + 2: propose a batch of trials. Batch size is 1 unless
        // speculating; the first trial always runs alone (it calibrates
        // the base cost of every untried learner).
        let mut batch = if replaying {
            1
        } else if speculative && iter > 0 {
            workers.min(states.len())
        } else {
            1
        };
        if let Some(cap) = settings.max_trials {
            batch = batch.min(cap - iter);
        }
        let mut proposals: Vec<Proposal> = Vec::with_capacity(batch);
        for b in 0..batch {
            let it = iter + b;
            // Step 1: learner choice.
            let li = if it == 0 {
                // The paper first runs the fastest learner to calibrate
                // the base trial cost.
                fastest
            } else {
                match settings.learner_selection {
                    // Round-robin ignores quarantine so the speculative
                    // trace stays invariant across worker counts.
                    LearnerSelection::RoundRobin => it % states.len(),
                    LearnerSelection::Eci => {
                        let global_best = best
                            .as_ref()
                            .map(|(_, _, e, _, _)| *e)
                            .unwrap_or(f64::INFINITY);
                        // Quarantined learners sit out until their probe
                        // iteration; if everything is quarantined, fall
                        // back to the full roster (FairChance must hold).
                        let mut eligible: Vec<usize> = (0..states.len())
                            .filter(|&i| !states[i].quarantined || it >= states[i].probe_at)
                            .collect();
                        if eligible.is_empty() {
                            eligible = (0..states.len()).collect();
                        }
                        let ecis: Vec<f64> = eligible
                            .iter()
                            .map(|&i| states[i].eci.eci(global_best, settings.sample_growth))
                            .collect();
                        eligible[sample_by_inverse_eci(&ecis, rng.gen::<f64>())]
                    }
                }
            };
            if proposals.iter().any(|p| p.li == li) {
                // A proposal for this learner is already in flight; its
                // feedback must land before the learner proposes again.
                break;
            }
            // Step 2: hyperparameters and sample size.
            let (mode, trial_s, point) = {
                let st = &mut states[li];
                let grow_sample = st.eci.tried()
                    && st.sample_size < n
                    && st.eci.eci1() >= st.eci.eci2(settings.sample_growth);
                if grow_sample {
                    let s_new = ((st.sample_size as f64 * settings.sample_growth) as usize).min(n);
                    (TrialMode::SampleUp, s_new, st.flow2.best_point())
                } else {
                    (TrialMode::Search, st.sample_size, st.flow2.ask())
                }
            };
            let st = &states[li];
            let config = st.space.decode(&point);
            let cost_factor = st.kind.cost_factor(&config, &st.space);
            let (trial_data, prep) = if replaying {
                // Replayed trials never execute; skip preparation so
                // resume costs no data-plane work (and no cache churn).
                (None, PrepStats::default())
            } else {
                let (td, prep) = plane.prepare(trial_s, st.kind.max_bin(&config, &st.space));
                (Some(Arc::new(td)), prep)
            };
            // Tree-cache plan: per-fold prefix lookups, on the controller
            // thread so cache reads happen in deterministic proposal
            // order. The learner name is part of the key and a batch
            // never holds two proposals for one learner, so a batch's
            // lookups cannot depend on its own store-backs — accounting
            // is identical at any worker count.
            let boost = match (&trial_data, tree_cache.enabled()) {
                (Some(td), true) => st.kind.boost_params(&config, &st.space).map(|bp| {
                    let tree_idx = st.space.index_of("tree_num");
                    let mut stats = TreeCacheStats::default();
                    let mut keys = Vec::with_capacity(td.folds.len());
                    let mut warm = Vec::with_capacity(td.folds.len());
                    for fi in 0..td.folds.len() {
                        let key = TreeKey::new(
                            st.kind.name(),
                            config.values(),
                            tree_idx,
                            trial_s,
                            fi,
                            bp.max_bin,
                            fingerprint,
                        );
                        match tree_cache.get(&key) {
                            Some(s) => {
                                stats.tree_cache_hits += 1;
                                stats.trees_saved += s.rounds_done().min(bp.n_trees) * s.n_groups();
                                warm.push(Some(s));
                            }
                            None => {
                                stats.tree_cache_misses += 1;
                                warm.push(None);
                            }
                        }
                        keys.push(key);
                    }
                    (
                        TrialBoost {
                            params: bp,
                            keys,
                            warm,
                        },
                        stats,
                    )
                }),
                _ => None,
            };
            let (boost, tree_prep) = match boost {
                Some((tb, stats)) => (Some(tb), stats),
                None => (None, TreeCacheStats::default()),
            };
            proposals.push(Proposal {
                li,
                trial_no: it + 1,
                mode,
                trial_s,
                config,
                seed: settings.seed.wrapping_add(it as u64),
                cost_factor,
                expected_fits: strategy.fits_per_trial(),
                data: trial_data,
                prep,
                boost,
                tree_prep,
            });
        }

        // Step 3: run the batch and observe errors and costs.
        let deadline = if clock.is_wall() {
            let remaining = settings.time_budget - clock.elapsed();
            Some(Duration::from_secs_f64(remaining.max(0.05)))
        } else {
            None
        };
        if !replaying {
            if let Some(sink) = sink {
                for p in &proposals {
                    let st = &states[p.li];
                    sink.emit(proposal_event(
                        TrialEventKind::Started,
                        p,
                        &st.kind.name(),
                        &p.config.render(&st.space),
                    ));
                }
            }
        }
        let states_ref = &states;
        let fold_pool_ref = &fold_pool;
        let results: Vec<Option<JobResult<TrialOutcome>>> = if replaying {
            proposals.iter().map(|_| None).collect()
        } else {
            let jobs: Vec<Job<'_, TrialOutcome>> = proposals
                .iter()
                .map(|p| {
                    let st = &states_ref[p.li];
                    let td = p.data.as_deref().expect("live trials carry prepared data");
                    let job = Job::new(move |_ctx| {
                        run_trial_prepared(
                            td,
                            &st.kind,
                            &p.config,
                            &st.space,
                            strategy,
                            metric,
                            p.seed,
                            deadline,
                            fold_pool_ref,
                            p.boost.as_ref(),
                        )
                    })
                    .deadline(deadline);
                    match settings.fault_plan {
                        Some(plan) => plan.instrument(job, p.trial_no as u64, 0),
                        None => job,
                    }
                })
                .collect();
            trial_pool
                .run_batch(jobs, None)
                .into_iter()
                .map(Some)
                .collect()
        };

        // Commit strictly in submission order; feedback, budget charging
        // and stopping decisions all happen here, exactly as the
        // sequential controller interleaved them.
        let mut discarding = false;
        for (b, result) in results.into_iter().enumerate() {
            let p = &proposals[b];
            let is_replay = result.is_none();
            // The sequential controller re-checks the budget before every
            // trial after the first; a speculative result whose turn
            // arrives past the budget must be dropped, not fed back.
            if !discarding && b > 0 && clock.elapsed() >= settings.time_budget {
                discarding = true;
            }
            if discarding {
                if let (Some(sink), Some(result)) = (sink, &result) {
                    let st = &states[p.li];
                    let mut ev = proposal_event(
                        TrialEventKind::Finished,
                        p,
                        &st.kind.name(),
                        &p.config.render(&st.space),
                    );
                    ev.wall_secs = Some(result.wall_secs);
                    ev.message = Some("speculative trial discarded: budget exhausted".to_string());
                    sink.emit(ev);
                }
                continue;
            }
            // No events during replay: the journaled records already
            // describe these trials, and the journal sink must not write
            // them a second time.
            let sink: Option<&EventSink> = if is_replay { None } else { sink };

            let mut attempt_costs: Vec<f64> = Vec::new();
            let (mut outcome, cost, measured, n_retries_trial) = if let Some(result) = result {
                let (mut outcome, mut measured) = commit_outcome(result, p, settings.fault_plan, 0);
                let mut cost = {
                    let info = TrialInfo {
                        learner_cost_constant: states[p.li].kind.cost_constant(),
                        sample_size: p.trial_s,
                        n_features: d,
                        cost_factor: outcome.cost_factor,
                        n_fits: outcome.n_fits.max(1),
                    };
                    let c = clock.charge(&info, measured);
                    attempt_costs.push(c);
                    c
                };

                // Transient failures (panics, non-finite losses) get
                // retried on the trial's own budget: every attempt is
                // charged like a fresh evaluation, the fault plan
                // re-rolls per attempt, and deterministic failures /
                // timeouts are never retried. The retry runs inline as a
                // single-job batch, so it is panic-isolated and
                // identical in sequential and speculative modes.
                let mut attempt: u32 = 0;
                let mut n_retries_trial = 0usize;
                while outcome.status.transient()
                    && n_retries_trial < settings.max_retries
                    && clock.elapsed() < settings.time_budget
                {
                    attempt += 1;
                    n_retries_trial += 1;
                    if let Some(sink) = sink {
                        let st = &states[p.li];
                        let mut ev = proposal_event(
                            TrialEventKind::Retried,
                            p,
                            &st.kind.name(),
                            &p.config.render(&st.space),
                        );
                        ev.message =
                            Some(format!("retry {n_retries_trial} after {}", outcome.status));
                        sink.emit(ev);
                    }
                    let retry_deadline = if clock.is_wall() {
                        let remaining = settings.time_budget - clock.elapsed();
                        Some(Duration::from_secs_f64(remaining.max(0.05)))
                    } else {
                        None
                    };
                    // Vary the seed per attempt so a genuinely flaky fit
                    // gets a different draw, not a replay of the same
                    // failure.
                    let retry_seed = p
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64));
                    let st = &states[p.li];
                    let td = p.data.as_deref().expect("live trials carry prepared data");
                    // The warm plan is reused as-is: cache-eligible fits
                    // are seed-invariant, so the retry seed cannot change
                    // the continued tree sequence.
                    let job = Job::new(move |_ctx| {
                        run_trial_prepared(
                            td,
                            &st.kind,
                            &p.config,
                            &st.space,
                            strategy,
                            metric,
                            retry_seed,
                            retry_deadline,
                            fold_pool_ref,
                            p.boost.as_ref(),
                        )
                    })
                    .deadline(retry_deadline);
                    let job = match settings.fault_plan {
                        Some(plan) => plan.instrument(job, p.trial_no as u64, attempt),
                        None => job,
                    };
                    let retry_result = trial_pool
                        .run_batch(vec![job], None)
                        .pop()
                        .expect("one job in, one result out");
                    let (o, m) = commit_outcome(retry_result, p, settings.fault_plan, attempt);
                    let info = TrialInfo {
                        learner_cost_constant: states[p.li].kind.cost_constant(),
                        sample_size: p.trial_s,
                        n_features: d,
                        cost_factor: o.cost_factor,
                        n_fits: o.n_fits.max(1),
                    };
                    let c = clock.charge(&info, m);
                    attempt_costs.push(c);
                    cost += c;
                    measured += m;
                    outcome = o;
                }
                (outcome, cost, measured, n_retries_trial)
            } else {
                // Replay: the journaled record substitutes for execution.
                // The budget clock re-applies the recorded per-attempt
                // charges in order (reproducing the live run's float
                // accumulation bit-for-bit), and the recorded loss feeds
                // the proposers exactly as the live outcome did.
                let line = replay
                    .pop_front()
                    .expect("replaying implies a queued record");
                verify_replay_line(&line, p, &states[p.li].kind.name())?;
                for &c in &line.attempt_costs {
                    clock.advance(c);
                }
                let status = TrialStatus::parse(&line.status).unwrap_or(TrialStatus::Ok);
                let outcome = TrialOutcome {
                    error: line.loss,
                    model: None,
                    n_fits: p.expected_fits,
                    cost_factor: p.cost_factor,
                    status,
                    message: None,
                    fold_states: Vec::new(),
                };
                attempt_costs = line.attempt_costs;
                (outcome, line.cost, line.wall_secs, line.attempts)
            };
            n_retries_total += n_retries_trial;

            // Tree-cache store-back, in submission (= commit) order: each
            // fold's grown prefix replaces a shorter cached one. A
            // deadline-truncated continuation still lands here — its
            // completed prefix is valid and worth keeping. Replayed and
            // ineligible trials carry no states and store nothing.
            if let Some(tb) = &p.boost {
                for (key, state) in tb.keys.iter().zip(&outcome.fold_states) {
                    if let Some(state) = state {
                        tree_cache.store(key.clone(), state.clone());
                    }
                }
                tree_cache.observe(p.tree_prep);
            }

            // Feedback into the proposers.
            {
                let st = &mut states[p.li];
                match p.mode {
                    TrialMode::Search => {
                        st.flow2.tell(outcome.error);
                        st.eci.on_trial(cost, outcome.error);
                    }
                    TrialMode::SampleUp => {
                        st.sample_size = p.trial_s;
                        st.flow2.set_best_err(outcome.error);
                        let improved = st.eci.on_trial(cost, outcome.error);
                        if !improved && outcome.error.is_finite() {
                            // Errors are only comparable at the same sample
                            // size: rebase the learner's incumbent error. A
                            // failed (infinite) trial must not poison it, or
                            // the learner would never be selected again
                            // (Property 3, FairChance).
                            st.eci.rebase_err(outcome.error);
                        }
                        if st.sample_size >= n {
                            st.flow2.set_adaptation(true);
                        }
                    }
                }
                // Restart a converged thread (full sample size only).
                if st.sample_size >= n && st.flow2.converged() {
                    st.flow2.restart();
                    if settings.sampling {
                        st.sample_size = settings.sample_size_init.min(n);
                        st.flow2.set_adaptation(st.sample_size >= n);
                    }
                }
            }

            // Calibrate untried learners' ECI after the very first trial.
            if iter == 0 {
                for (i, st) in states.iter_mut().enumerate() {
                    if i != p.li {
                        st.eci.set_untried_estimate(cost * st.kind.cost_constant());
                    }
                }
            }

            // Global best bookkeeping.
            let improved_global = outcome.error.is_finite()
                && best
                    .as_ref()
                    .map(|(_, _, e, _, _)| outcome.error < *e)
                    .unwrap_or(true);
            if improved_global {
                best = Some((
                    p.li,
                    p.config.clone(),
                    outcome.error,
                    outcome.model.take(),
                    p.trial_s,
                ));
            }

            iter += 1;

            // Per-learner failure budget: consecutive non-finite trials
            // quarantine a learner (the ECI proposer skips it until its
            // next probe); any usable value lifts the quarantine. The
            // bookkeeping runs in every mode so traces stay deterministic,
            // but only ECI selection consults it.
            {
                let st = &mut states[p.li];
                if outcome.error.is_finite() {
                    st.consecutive_failures = 0;
                    if st.quarantined {
                        st.quarantined = false;
                        if let Some(sink) = sink {
                            let mut ev = proposal_event(
                                TrialEventKind::Unquarantined,
                                p,
                                &st.kind.name(),
                                "",
                            );
                            ev.message =
                                Some("probe trial succeeded; quarantine lifted".to_string());
                            sink.emit(ev);
                        }
                    }
                } else {
                    st.consecutive_failures += 1;
                    if st.quarantined {
                        // Failed probe: back to the bench until the next.
                        st.probe_at = iter + settings.quarantine_probe_every;
                    } else if settings.quarantine_after > 0
                        && st.consecutive_failures >= settings.quarantine_after
                    {
                        st.quarantined = true;
                        st.probe_at = iter + settings.quarantine_probe_every;
                        n_quarantined += 1;
                        if let Some(sink) = sink {
                            let mut ev =
                                proposal_event(TrialEventKind::Quarantined, p, &st.kind.name(), "");
                            ev.message = Some(format!(
                                "quarantined after {} consecutive failures; probe at trial {}",
                                st.consecutive_failures, st.probe_at
                            ));
                            sink.emit(ev);
                        }
                    }
                }
            }

            let eci_snapshot = if settings.learner_selection == LearnerSelection::Eci {
                let global_best = best
                    .as_ref()
                    .map(|(_, _, e, _, _)| *e)
                    .unwrap_or(f64::INFINITY);
                states
                    .iter()
                    .map(|s| {
                        (
                            s.kind.name(),
                            s.eci.eci(global_best, settings.sample_growth),
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let rendered = p.config.render(&states[p.li].space);
            let best_err_so_far = best
                .as_ref()
                .map(|(_, _, e, _, _)| *e)
                .unwrap_or(f64::INFINITY);
            if let Some(sink) = sink {
                let kind = match outcome.status {
                    TrialStatus::Panicked => TrialEventKind::Panicked,
                    TrialStatus::TimedOut => TrialEventKind::TimedOut,
                    _ => TrialEventKind::Finished,
                };
                let mut ev = proposal_event(kind, p, &states[p.li].kind.name(), &rendered);
                ev.error = Some(outcome.error);
                ev.cost = Some(cost);
                ev.wall_secs = Some(measured);
                ev.message = outcome.message.clone();
                ev.prepared_hits = p.prep.prepared_hits;
                ev.prepared_misses = p.prep.prepared_misses;
                ev.prepared_evictions = p.prep.prepared_evictions;
                ev.bytes_copied_saved = p.prep.bytes_copied_saved;
                ev.tree_cache_hits = p.tree_prep.tree_cache_hits;
                ev.tree_cache_misses = p.tree_prep.tree_cache_misses;
                ev.trees_saved = p.tree_prep.trees_saved;
                ev.meta = Some(TrialMeta {
                    mode: p.mode.name().to_string(),
                    status: outcome.status.to_string(),
                    attempts: n_retries_trial,
                    attempt_costs: attempt_costs.clone(),
                    total_time: clock.elapsed(),
                    seed: p.seed,
                    config_values: p.config.values().to_vec(),
                    improved: improved_global,
                    best_error: best_err_so_far,
                });
                sink.emit(ev);
            }
            trials.push(TrialRecord {
                iter,
                learner: states[p.li].kind.name(),
                config: rendered,
                config_values: p.config.values().to_vec(),
                sample_size: p.trial_s,
                error: outcome.error,
                cost,
                total_time: clock.elapsed(),
                mode: p.mode,
                improved_global,
                best_error_so_far: best_err_so_far,
                eci_snapshot,
                timed_out: outcome.timed_out(),
                panicked: outcome.panicked(),
                status: outcome.status,
                n_retries: n_retries_trial,
            });
        }
        if discarding {
            break 'search;
        }
    }

    // A persistence failure invalidates the run even if the search
    // itself succeeded: the caller believes every committed trial is on
    // disk, and here that stopped being true. The writer already
    // truncated the journal back to its last committed record.
    if let Some(e) = shared_journal.as_ref().and_then(|s| s.take_error()) {
        return Err(AutoMlError::Durability(e));
    }

    let Some((best_li, best_config, best_error, trial_model, _best_s)) = best else {
        return Err(AutoMlError::NoViableModel);
    };
    let best_kind = states[best_li].kind.clone();
    let best_space = &states[best_li].space;

    // Final model: retrain the best configuration on the full training
    // data (CV trials defer training; holdout trials trained on 90% of a
    // sample). The refit budget is the time actually left — an exhausted
    // budget must not grant the refit extra time. Fall back to the
    // trial's model when nothing remains (or the refit fails); only when
    // there is no trial model either (CV defers its models) does the
    // refit get a minimal grace budget, since returning no model at all
    // would turn a finished search into an error.
    let remaining = if clock.is_wall() {
        Some((settings.time_budget - clock.elapsed()).max(0.0))
    } else {
        None
    };
    let out_of_budget = remaining.map(|r| r <= 0.0).unwrap_or(false);
    let refit_budget =
        remaining.map(|r| Duration::from_secs_f64(r.max(0.05).min(settings.time_budget)));
    let model = match (out_of_budget, trial_model) {
        (true, Some(m)) => m,
        (_, trial_model) => {
            match best_kind.fit(
                &shuffled,
                &best_config,
                best_space,
                settings.seed,
                refit_budget,
            ) {
                Ok(m) => m,
                Err(e) => match trial_model {
                    Some(m) => m,
                    None => return Err(AutoMlError::RefitFailed(e)),
                },
            }
        }
    };

    // Optional stacked-ensemble post-processing (paper appendix).
    let model = if settings.ensemble {
        let specs: Vec<MemberSpec> = states
            .iter()
            .filter(|st| st.eci.tried() && st.eci.best_err().is_finite())
            .map(|st| MemberSpec {
                kind: st.kind.clone(),
                config: st.space.decode(&st.flow2.best_point()),
                space: st.space.clone(),
                error: st.eci.best_err(),
            })
            .collect();
        build_stacked(&shuffled, specs, 4, 5, settings.seed, refit_budget).unwrap_or(model)
    } else {
        model
    };

    Ok(AutoMlResult {
        best_learner: best_kind.name(),
        best_config_rendered: best_config.render(best_space),
        best_config,
        best_error,
        model,
        trials,
        strategy,
        metric,
        n_retries: n_retries_total,
        n_quarantined,
    })
}
