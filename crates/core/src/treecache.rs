//! The cross-trial tree cache: boosting prefixes cached the way the
//! [`crate::dataplane::DataPlane`] caches binned matrices.
//!
//! FLOW² and ECI frequently re-propose a configuration that differs from
//! an already-evaluated one only in `tree_num` — the search's
//! cheap-to-expensive ordering sweeps that axis constantly. For
//! seed-invariant boosting fits (no row/column subsampling, no early
//! stopping — which is exactly the paper's low-cost initial region for
//! the LightGBM- and XGBoost-style learners), the tree sequence is a
//! pure, prefix-stable function of (config-without-`tree_num`, fold
//! data, bins): the first `r` rounds of any run equal a shorter run's
//! `r` rounds bit-for-bit. So the controller caches each fold's
//! [`GbdtFitState`] keyed by that identity and later trials continue
//! boosting from the cached prefix, paying only for the *marginal*
//! trees (or zero, when the cached prefix is already long enough — a
//! backward snapshot serves smaller `tree_num` values for free).
//!
//! Caching is **observationally pure**: a continued fit is bit-identical
//! to a fresh fit at the larger round count
//! ([`flaml_learners::Gbdt::fit_continue`]'s contract), so search traces
//! are byte-identical with the cache on, off, or evicting under memory
//! pressure. Only the `tree_cache_hits` / `tree_cache_misses` /
//! `trees_saved` telemetry counters and wall time observe it.
//!
//! Like the data plane, the cache is owned and mutated only by the
//! controller thread: lookups happen at proposal time, store-backs at
//! commit time (in submission order), and worker jobs only read the
//! `Arc`-captured states — no locking, deterministic at any worker
//! count. Within one speculative batch every proposal touches a
//! *different* learner (the controller never batches a learner twice)
//! and the learner name is part of the key, so a batch's lookups can
//! never race its own store-backs and hit/miss accounting is invariant
//! across worker counts.

use flaml_learners::GbdtFitState;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Identity of one cached boosting prefix. Two trials share an entry
/// exactly when continuing one's fit reproduces the other's bit-for-bit:
/// same learner, same configuration *with the tree count erased*, same
/// sample size and fold (which pin the training rows), same binning
/// resolution, and same dataset fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TreeKey {
    /// Learner name (`lgbm`, `xgboost`, ...).
    pub learner: String,
    /// The trial's decoded configuration values with the `tree_num` slot
    /// zeroed, as raw bits (exact equality, no float comparison).
    pub config_bits: Vec<u64>,
    /// The trial's sample size.
    pub sample_size: usize,
    /// Fold index within the trial's resampling strategy.
    pub fold: usize,
    /// Binning resolution the fit uses.
    pub max_bin: usize,
    /// Fingerprint of the (cleaned) training dataset.
    pub fingerprint: u64,
}

impl TreeKey {
    /// Builds a key from a trial's decoded configuration, erasing the
    /// value at `tree_num_index` (when present) so configurations that
    /// differ only in their tree count collide.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        learner: String,
        config_values: &[f64],
        tree_num_index: Option<usize>,
        sample_size: usize,
        fold: usize,
        max_bin: usize,
        fingerprint: u64,
    ) -> TreeKey {
        let config_bits = config_values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if Some(i) == tree_num_index {
                    0u64
                } else {
                    v.to_bits()
                }
            })
            .collect();
        TreeKey {
            learner,
            config_bits,
            sample_size,
            fold,
            max_bin,
            fingerprint,
        }
    }
}

/// Per-trial tree-cache accounting, surfaced through trial events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeCacheStats {
    /// Folds whose fit continued from a cached prefix.
    pub tree_cache_hits: usize,
    /// Cache-eligible folds that started from round zero.
    pub tree_cache_misses: usize,
    /// Trees served from cached prefixes instead of being refit
    /// (`min(cached_rounds, target_rounds) × n_groups`, summed over
    /// folds) — the work the cache saved this trial.
    pub trees_saved: usize,
}

/// A trial's warm-continuation plan, built by the controller at proposal
/// time: the concrete boosting parameters plus, per fold, the cache key
/// and the cached prefix to continue from (if any). Worker jobs read the
/// `Arc`-captured states; the controller stores the grown states back at
/// commit time under the same keys.
#[derive(Debug, Clone)]
pub struct TrialBoost {
    /// The fit's boosting parameters (`n_trees` is the trial's target).
    pub params: flaml_learners::GbdtParams,
    /// Per-fold cache keys, in fold order.
    pub keys: Vec<TreeKey>,
    /// Per-fold cached prefixes, in fold order (`None` = cold start).
    pub warm: Vec<Option<Arc<GbdtFitState>>>,
}

/// The boosting-prefix cache, keyed by [`TreeKey`].
///
/// Eviction is deterministic LRU-by-insertion under a byte budget,
/// exactly like the data plane: entries leave in the order they were
/// (last) stored, never the entry just inserted. Storing a longer
/// prefix under an existing key replaces the entry in place and
/// refreshes its queue position. Lookups never mutate, so a speculative
/// proposal that is later discarded leaves no trace in the cache.
#[derive(Debug)]
pub struct TreeCache {
    enabled: bool,
    budget_bytes: usize,
    entries: BTreeMap<TreeKey, Arc<GbdtFitState>>,
    order: VecDeque<(TreeKey, usize)>,
    held_bytes: usize,
    totals: TreeCacheStats,
}

impl TreeCache {
    /// A tree cache with the given byte budget. `enabled = false`
    /// disables lookups and store-backs entirely: every fit runs from
    /// round zero, bit-identical to the cached path.
    pub fn new(enabled: bool, budget_bytes: usize) -> TreeCache {
        TreeCache {
            enabled,
            budget_bytes,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            held_bytes: 0,
            totals: TreeCacheStats::default(),
        }
    }

    /// Whether the cache serves and stores prefixes.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The cached prefix for `key`, if any. Pure: no recency bookkeeping,
    /// so a lookup (even one whose trial is later discarded) cannot
    /// change what any other trial observes.
    pub fn get(&self, key: &TreeKey) -> Option<Arc<GbdtFitState>> {
        if !self.enabled {
            return None;
        }
        self.entries.get(key).cloned()
    }

    /// Stores `state` under `key`, keeping the *longest* prefix: an entry
    /// is only replaced when the incoming state has strictly more rounds.
    /// Evicts oldest-stored entries while over the byte budget (never the
    /// entry just stored).
    pub fn store(&mut self, key: TreeKey, state: Arc<GbdtFitState>) {
        if !self.enabled {
            return;
        }
        if let Some(existing) = self.entries.get(&key) {
            if existing.rounds_done() >= state.rounds_done() {
                return;
            }
            // Replace in place: drop the stale queue entry and bytes so
            // accounting stays exact, then re-enter at the back.
            if let Some(pos) = self.order.iter().position(|(k, _)| *k == key) {
                let (_, stale) = self.order.remove(pos).expect("position just found");
                self.held_bytes -= stale;
            }
        }
        let bytes = state.heap_bytes();
        self.entries.insert(key.clone(), state);
        self.held_bytes += bytes;
        self.order.push_back((key, bytes));
        while self.held_bytes > self.budget_bytes && self.order.len() > 1 {
            let (victim, freed) = self.order.pop_front().expect("len checked");
            self.held_bytes -= freed;
            self.entries.remove(&victim);
        }
    }

    /// Accumulates one trial's stats into the run totals.
    pub fn observe(&mut self, stats: TreeCacheStats) {
        self.totals.tree_cache_hits += stats.tree_cache_hits;
        self.totals.tree_cache_misses += stats.tree_cache_misses;
        self.totals.trees_saved += stats.trees_saved;
    }

    /// Run totals across every observed trial.
    pub fn totals(&self) -> TreeCacheStats {
        self.totals
    }

    /// Bytes currently held by cached prefixes (their owned parts; the
    /// `Arc`-shared binned matrices are budgeted by the data plane).
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};
    use flaml_learners::{Gbdt, GbdtParams};

    fn state(rounds: usize) -> Arc<GbdtFitState> {
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| f64::from(v > 0.5)).collect();
        let d = Dataset::new("t", Task::Binary, vec![x], y).unwrap();
        let mut s = Gbdt::fit_start(&d, &GbdtParams::default(), 0, None).unwrap();
        Gbdt::fit_continue(&mut s, rounds);
        Arc::new(s)
    }

    fn key(sample: usize, fold: usize) -> TreeKey {
        TreeKey::new(
            "lgbm".to_string(),
            &[4.0, 1.5, 0.25],
            Some(0),
            sample,
            fold,
            255,
            0xfeed,
        )
    }

    #[test]
    fn key_erases_tree_num() {
        let a = TreeKey::new("lgbm".into(), &[4.0, 1.5], Some(0), 100, 0, 255, 1);
        let b = TreeKey::new("lgbm".into(), &[512.0, 1.5], Some(0), 100, 0, 255, 1);
        let c = TreeKey::new("lgbm".into(), &[4.0, 2.5], Some(0), 100, 0, 255, 1);
        assert_eq!(a, b, "tree counts must collide");
        assert_ne!(a, c, "other params must not");
    }

    #[test]
    fn store_keeps_longest_prefix() {
        let mut cache = TreeCache::new(true, usize::MAX);
        cache.store(key(100, 0), state(8));
        cache.store(key(100, 0), state(3));
        assert_eq!(cache.get(&key(100, 0)).unwrap().rounds_done(), 8);
        cache.store(key(100, 0), state(12));
        assert_eq!(cache.get(&key(100, 0)).unwrap().rounds_done(), 12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn byte_budget_evicts_in_insertion_order_but_keeps_newest() {
        let mut cache = TreeCache::new(true, 1);
        cache.store(key(100, 0), state(2));
        assert_eq!(cache.len(), 1, "newest always survives");
        cache.store(key(100, 1), state(2));
        assert_eq!(cache.len(), 1, "oldest evicted under a 1-byte budget");
        assert!(cache.get(&key(100, 0)).is_none());
        assert!(cache.get(&key(100, 1)).is_some());
    }

    #[test]
    fn replacement_keeps_byte_accounting_exact() {
        let mut cache = TreeCache::new(true, usize::MAX);
        cache.store(key(100, 0), state(2));
        let small = cache.held_bytes();
        cache.store(key(100, 0), state(10));
        assert!(cache.held_bytes() > small);
        assert_eq!(
            cache.held_bytes(),
            cache.get(&key(100, 0)).unwrap().heap_bytes(),
            "replaced entry's bytes must not linger"
        );
    }

    #[test]
    fn disabled_cache_stores_and_serves_nothing() {
        let mut cache = TreeCache::new(false, usize::MAX);
        cache.store(key(100, 0), state(2));
        assert!(cache.get(&key(100, 0)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.held_bytes(), 0);
    }
}
