//! User-defined learners — the paper's `add_learner` API ("It is easy to
//! add customized learners or metrics in FLAML").
//!
//! A custom learner supplies its name, its hyperparameter search space
//! (with low-cost initial values, like Table 5's bold entries), an
//! optional cost constant for the ECI initialization of untried learners,
//! and a `fit` that returns any [`FittedModel`] — including
//! [`FittedModel::Custom`] wrapping a user model type.
//!
//! # Example
//!
//! ```
//! use flaml_core::{AutoMl, CustomLearner};
//! use flaml_data::DatasetView;
//! use flaml_learners::{FitError, FittedModel, Forest, ForestParams};
//! use flaml_search::{Config, Domain, ParamDef, SearchSpace};
//! use std::time::Duration;
//!
//! /// A shallow-forest learner with one searched hyperparameter.
//! #[derive(Debug)]
//! struct ShallowForest;
//!
//! impl CustomLearner for ShallowForest {
//!     fn name(&self) -> &str {
//!         "shallow_forest"
//!     }
//!     fn space(&self, n_rows: usize) -> SearchSpace {
//!         let cap = n_rows.min(256) as i64;
//!         SearchSpace::new(vec![ParamDef::new(
//!             "tree_num",
//!             Domain::log_int(4, cap.max(5)),
//!             4.0,
//!         )])
//!         .expect("valid space")
//!     }
//!     fn fit(
//!         &self,
//!         data: &DatasetView,
//!         config: &Config,
//!         space: &SearchSpace,
//!         seed: u64,
//!         budget: Option<Duration>,
//!     ) -> Result<FittedModel, FitError> {
//!         let params = ForestParams {
//!             n_trees: config.get(space, "tree_num") as usize,
//!             max_depth: Some(3),
//!             ..ForestParams::default()
//!         };
//!         Forest::fit_bounded(data, &params, seed, budget).map(FittedModel::from)
//!     }
//! }
//!
//! let automl = AutoMl::new().add_learner(std::sync::Arc::new(ShallowForest));
//! # let _ = automl;
//! ```

use crate::spaces::LearnerKind;
use flaml_data::DatasetView;
use flaml_learners::{FitError, FittedModel, PreparedBins};
use flaml_search::{Config, SearchSpace};
use std::sync::Arc;
use std::time::Duration;

/// A user-defined learner pluggable into the AutoML search.
pub trait CustomLearner: std::fmt::Debug + Send + Sync {
    /// Unique learner name (used in trial records and reports).
    fn name(&self) -> &str;

    /// The hyperparameter search space for a dataset of `n_rows` rows.
    /// Initial values should be the learner's cheapest configuration.
    fn space(&self, n_rows: usize) -> SearchSpace;

    /// Expected cost of the cheapest configuration relative to the
    /// fastest learner's cheapest trial (the paper's appendix constants;
    /// LightGBM is 1.0). Used to initialize ECI before the first trial.
    fn cost_constant(&self) -> f64 {
        2.0
    }

    /// Trains a model for the decoded configuration. `budget`, when set,
    /// bounds training time; implementations should return a usable
    /// partial model rather than exceeding it.
    ///
    /// `data` is a zero-copy [`DatasetView`] (the search loop never
    /// materializes subsamples or folds); every builtin learner's `fit`
    /// accepts it directly, and `data.materialize()` recovers an owned
    /// `Dataset` for learners that need one.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for invalid configurations or unusable data.
    fn fit(
        &self,
        data: &DatasetView,
        config: &Config,
        space: &SearchSpace,
        seed: u64,
        budget: Option<Duration>,
    ) -> Result<FittedModel, FitError>;
}

/// A searchable estimator: one of the six builtin learners or a
/// user-registered [`CustomLearner`].
#[derive(Debug, Clone)]
pub enum Estimator {
    /// A builtin learner of the paper's ML layer.
    Builtin(LearnerKind),
    /// A user-defined learner.
    Custom(Arc<dyn CustomLearner>),
}

impl Estimator {
    /// The learner's name.
    pub fn name(&self) -> String {
        match self {
            Estimator::Builtin(k) => k.name().to_string(),
            Estimator::Custom(c) => c.name().to_string(),
        }
    }

    /// The learner's search space for `n_rows` training rows.
    pub fn space(&self, n_rows: usize) -> SearchSpace {
        match self {
            Estimator::Builtin(k) => k.space(n_rows),
            Estimator::Custom(c) => c.space(n_rows),
        }
    }

    /// The ECI initialization constant.
    pub fn cost_constant(&self) -> f64 {
        match self {
            Estimator::Builtin(k) => k.cost_constant(),
            Estimator::Custom(c) => c.cost_constant(),
        }
    }

    /// Trains a model for the decoded configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for invalid configurations or unusable data.
    pub fn fit(
        &self,
        data: impl Into<DatasetView>,
        config: &Config,
        space: &SearchSpace,
        seed: u64,
        budget: Option<Duration>,
    ) -> Result<FittedModel, FitError> {
        let data: DatasetView = data.into();
        self.fit_prepared(&data, config, space, seed, budget, None)
    }

    /// Like [`Estimator::fit`], but reuses a cached [`PreparedBins`]
    /// artifact when the learner bins its features and the artifact's
    /// `max_bin` matches the configuration's. A mismatched or absent
    /// artifact falls back to computing bins from `data` — the fitted
    /// model is bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] for invalid configurations or unusable data.
    pub fn fit_prepared(
        &self,
        data: &DatasetView,
        config: &Config,
        space: &SearchSpace,
        seed: u64,
        budget: Option<Duration>,
        prepared: Option<&PreparedBins>,
    ) -> Result<FittedModel, FitError> {
        match self {
            Estimator::Builtin(k) => crate::learner::fit_learner_prepared(
                *k, data, config, space, seed, budget, prepared,
            ),
            Estimator::Custom(c) => c.fit(data, config, space, seed, budget),
        }
    }

    /// The binning resolution this learner fits `config` with, or `None`
    /// for learners that do not bin. The data plane prepares (and caches)
    /// a [`PreparedBins`] artifact per `(sample, fold, max_bin)` key;
    /// returning exactly the `max_bin` that
    /// [`crate::fit_learner`] will put in the learner's
    /// parameters is what makes the cached artifact admissible.
    pub fn max_bin(&self, config: &Config, space: &SearchSpace) -> Option<usize> {
        match self {
            Estimator::Builtin(LearnerKind::LightGbm) => {
                Some(config.get(space, "max_bin") as usize)
            }
            Estimator::Builtin(LearnerKind::XgBoost | LearnerKind::CatBoost) => Some(255),
            Estimator::Builtin(LearnerKind::Rf | LearnerKind::ExtraTrees | LearnerKind::Lr)
            | Estimator::Custom(_) => None,
        }
    }

    /// The boosting parameters of this learner's trial fit when the fit
    /// is eligible for the cross-trial tree cache (see
    /// [`crate::TreeCache`]): a builtin boosting learner whose
    /// configuration is seed-invariant (no row/column subsampling) and
    /// prefix-stable (no early stopping). `None` for everything else —
    /// custom learners are opaque, so their fits are never cached.
    pub fn boost_params(
        &self,
        config: &Config,
        space: &SearchSpace,
    ) -> Option<flaml_learners::GbdtParams> {
        match self {
            Estimator::Builtin(k) => crate::learner::cacheable_gbdt_params(*k, config, space),
            Estimator::Custom(_) => None,
        }
    }

    /// The virtual-clock complexity factor of a configuration.
    pub fn cost_factor(&self, config: &Config, space: &SearchSpace) -> f64 {
        match self {
            Estimator::Builtin(k) => crate::learner::config_cost_factor(*k, config, space),
            // Without learner-specific knowledge, scale by tree_num-like
            // parameters if present, else a constant.
            Estimator::Custom(_) => space
                .index_of("tree_num")
                .map(|i| config.values()[i] * 32.0)
                .unwrap_or(64.0),
        }
    }
}

impl From<LearnerKind> for Estimator {
    fn from(k: LearnerKind) -> Self {
        Estimator::Builtin(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};
    use flaml_learners::{Linear, LinearParams};
    use flaml_search::{Domain, ParamDef};

    #[derive(Debug)]
    struct Stub;

    impl CustomLearner for Stub {
        fn name(&self) -> &str {
            "stub"
        }
        fn space(&self, _n: usize) -> SearchSpace {
            SearchSpace::new(vec![ParamDef::new("c", Domain::log_float(0.1, 10.0), 1.0)])
                .expect("valid")
        }
        fn cost_constant(&self) -> f64 {
            3.5
        }
        fn fit(
            &self,
            data: &DatasetView,
            config: &Config,
            space: &SearchSpace,
            seed: u64,
            budget: Option<Duration>,
        ) -> Result<FittedModel, FitError> {
            Linear::fit_bounded(
                data,
                &LinearParams {
                    c: config.get(space, "c"),
                    max_iter: 5,
                },
                seed,
                budget,
            )
            .map(FittedModel::from)
        }
    }

    fn toy() -> Dataset {
        let x: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| f64::from(i >= 30)).collect();
        Dataset::new("t", Task::Binary, vec![x], y).unwrap()
    }

    #[test]
    fn estimator_dispatch_builtin() {
        let e = Estimator::from(LearnerKind::Lr);
        assert_eq!(e.name(), "lr");
        assert_eq!(e.cost_constant(), 160.0);
        assert_eq!(e.space(100).dim(), 1);
    }

    #[test]
    fn estimator_dispatch_custom() {
        let e = Estimator::Custom(Arc::new(Stub));
        assert_eq!(e.name(), "stub");
        assert_eq!(e.cost_constant(), 3.5);
        let data = toy();
        let space = e.space(data.n_rows());
        let model = e
            .fit(&data, &space.init_config(), &space, 0, None)
            .expect("stub fits");
        assert_eq!(model.predict(&data).n_rows(), 60);
    }

    #[test]
    fn custom_cost_factor_uses_tree_num_if_present() {
        let e = Estimator::Custom(Arc::new(Stub));
        let space = e.space(100);
        let f = e.cost_factor(&space.init_config(), &space);
        assert_eq!(f, 64.0, "no tree_num in the stub space");
    }

    #[test]
    fn max_bin_tracks_the_learner_params() {
        let lgbm = Estimator::from(LearnerKind::LightGbm);
        let space = lgbm.space(1000);
        let config = space.init_config();
        assert_eq!(
            lgbm.max_bin(&config, &space),
            Some(config.get(&space, "max_bin") as usize),
            "lightgbm searches max_bin"
        );
        for fixed in [LearnerKind::XgBoost, LearnerKind::CatBoost] {
            let e = Estimator::from(fixed);
            let space = e.space(1000);
            assert_eq!(e.max_bin(&space.init_config(), &space), Some(255));
        }
        for unbinned in [LearnerKind::Rf, LearnerKind::ExtraTrees, LearnerKind::Lr] {
            let e = Estimator::from(unbinned);
            let space = e.space(1000);
            assert_eq!(e.max_bin(&space.init_config(), &space), None);
        }
        let custom = Estimator::Custom(Arc::new(Stub));
        let space = custom.space(100);
        assert_eq!(custom.max_bin(&space.init_config(), &space), None);
    }
}
