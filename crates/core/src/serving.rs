//! Bridges AutoML results to the serving stack: compile a run's best
//! model into a [`CompiledModel`] artifact, export it to disk, or go
//! journal → retrain → artifact in one call.

use std::path::Path;

use flaml_blob::{save_blob, ArtifactFormat, BlobOptions};
use flaml_data::Dataset;
use flaml_serve::CompiledModel;

use crate::automl::{retrain_from_log, AutoMlError, AutoMlResult, Retrained};

/// Writes `model` to `path` in the requested format, returning the
/// artifact fingerprint. Blob exports use the tuned layout (hot-first
/// node order plus exact-only quantization) — both are guaranteed not
/// to change predicted bits.
fn export_compiled(
    model: &CompiledModel,
    path: &Path,
    format: ArtifactFormat,
) -> Result<u64, AutoMlError> {
    Ok(match format {
        ArtifactFormat::Json => model.save(path)?,
        ArtifactFormat::Blob => save_blob(model, path, BlobOptions::tuned())?,
    })
}

impl AutoMlResult {
    /// Compiles the run's final refit model into a serving artifact.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if the model is a custom
    /// learner the artifact format cannot represent.
    pub fn compile(&self) -> Result<CompiledModel, AutoMlError> {
        Ok(CompiledModel::compile(&self.model)?)
    }

    /// Compiles the final model and writes it to `path` as a versioned,
    /// fingerprinted artifact. Returns the payload fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if compilation or the write
    /// fails.
    pub fn export_artifact(&self, path: impl AsRef<Path>) -> Result<u64, AutoMlError> {
        self.export_artifact_as(path, ArtifactFormat::Json)
    }

    /// [`AutoMlResult::export_artifact`] in an explicit format: the
    /// portable JSON document, or the mmap-able binary blob
    /// (`ArtifactFormat::Blob`) whose predictions are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if compilation or the write
    /// fails.
    pub fn export_artifact_as(
        &self,
        path: impl AsRef<Path>,
        format: ArtifactFormat,
    ) -> Result<u64, AutoMlError> {
        export_compiled(&self.compile()?, path.as_ref(), format)
    }
}

impl Retrained {
    /// Compiles the retrained model into a serving artifact.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if the model is a custom
    /// learner the artifact format cannot represent.
    pub fn compile(&self) -> Result<CompiledModel, AutoMlError> {
        Ok(CompiledModel::compile(&self.model)?)
    }

    /// Compiles the retrained model and writes it to `path`. Returns
    /// the payload fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if compilation or the write
    /// fails.
    pub fn export_artifact(&self, path: impl AsRef<Path>) -> Result<u64, AutoMlError> {
        self.export_artifact_as(path, ArtifactFormat::Json)
    }

    /// [`Retrained::export_artifact`] in an explicit format (see
    /// [`AutoMlResult::export_artifact_as`]).
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Artifact`] if compilation or the write
    /// fails.
    pub fn export_artifact_as(
        &self,
        path: impl AsRef<Path>,
        format: ArtifactFormat,
    ) -> Result<u64, AutoMlError> {
        export_compiled(&self.compile()?, path.as_ref(), format)
    }
}

/// Rebuilds the journaled best model ([`retrain_from_log`]) and writes
/// it straight to `out` as a serving artifact — the journal-to-service
/// deployment path in one call. Returns the retrained model alongside
/// so callers can inspect the learner, configuration and loss.
///
/// # Errors
///
/// Returns [`AutoMlError`] if the journal is unusable (see
/// [`retrain_from_log`]) or the artifact cannot be compiled or written.
pub fn export_artifact_from_log(
    journal: impl AsRef<Path>,
    data: &Dataset,
    out: impl AsRef<Path>,
) -> Result<Retrained, AutoMlError> {
    export_artifact_from_log_as(journal, data, out, ArtifactFormat::Json)
}

/// [`export_artifact_from_log`] in an explicit artifact format.
///
/// # Errors
///
/// Same as [`export_artifact_from_log`].
pub fn export_artifact_from_log_as(
    journal: impl AsRef<Path>,
    data: &Dataset,
    out: impl AsRef<Path>,
    format: ArtifactFormat,
) -> Result<Retrained, AutoMlError> {
    let retrained = retrain_from_log(journal, data)?;
    retrained.export_artifact_as(out, format)?;
    Ok(retrained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automl::AutoMl;
    use crate::spaces::LearnerKind;
    use flaml_data::Task;
    use flaml_metrics::Pred;

    fn dataset() -> Dataset {
        let x: Vec<f64> = (0..240).map(|i| (i % 83) as f64 / 83.0).collect();
        let y: Vec<f64> = x.iter().map(|v| f64::from(*v > 0.45)).collect();
        Dataset::new("serving", Task::Binary, vec![x], y).unwrap()
    }

    fn bits(p: &Pred) -> Vec<u64> {
        match p {
            Pred::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
            Pred::Probs { p, .. } => p.iter().map(|x| x.to_bits()).collect(),
        }
    }

    #[test]
    fn automl_result_exports_a_loadable_bit_identical_artifact() {
        let data = dataset();
        let result = AutoMl::new()
            .time_budget(0.5)
            .estimators([LearnerKind::LightGbm])
            .fit(&data)
            .unwrap();
        let compiled = result.compile().unwrap();
        assert_eq!(
            bits(&compiled.predict(&data)),
            bits(&result.model.predict(&data))
        );

        let path = std::env::temp_dir().join("flaml-core-serving-test/automl.artifact.json");
        let fp = result.export_artifact(&path).unwrap();
        let loaded = CompiledModel::load(&path).unwrap();
        assert_eq!(loaded, compiled);
        assert_eq!(
            flaml_serve::fingerprint(&serde_json::to_string(&loaded).unwrap()),
            fp
        );
    }

    #[test]
    fn blob_export_opens_and_predicts_bit_identically() {
        let data = dataset();
        let result = AutoMl::new()
            .time_budget(0.5)
            .estimators([LearnerKind::LightGbm])
            .fit(&data)
            .unwrap();
        let path = std::env::temp_dir().join("flaml-core-serving-test/automl.artifact.blob");
        let fp = result
            .export_artifact_as(&path, flaml_blob::ArtifactFormat::Blob)
            .unwrap();
        let blob = flaml_blob::BlobModel::open(&path).unwrap();
        assert_eq!(blob.fingerprint(), fp);
        assert_eq!(
            bits(&blob.predict(&data)),
            bits(&result.model.predict(&data)),
            "blob artifact must predict exactly like the run's model"
        );
    }

    #[test]
    fn journal_to_artifact_pipeline_round_trips() {
        let data = dataset();
        let dir = std::env::temp_dir().join("flaml-core-serving-test");
        let log = dir.join("run.jsonl");
        let _ = std::fs::remove_file(&log);
        let result = AutoMl::new()
            .time_budget(0.5)
            .estimators([LearnerKind::Lr])
            .journal(&log)
            .fit(&data)
            .unwrap();

        let out = dir.join("from-log.artifact.json");
        let retrained = export_artifact_from_log(&log, &data, &out).unwrap();
        assert_eq!(retrained.learner, result.best_learner);
        let loaded = CompiledModel::load(&out).unwrap();
        assert_eq!(
            bits(&loaded.predict(&data)),
            bits(&result.model.predict(&data)),
            "journal-exported artifact must predict exactly like the run's model"
        );
    }

    #[test]
    fn custom_models_surface_the_artifact_error_variant() {
        use flaml_data::DatasetView;
        use flaml_learners::{DynModel, FittedModel};
        use std::sync::Arc;

        #[derive(Debug)]
        struct Opaque;
        impl DynModel for Opaque {
            fn predict_dyn(&self, data: &DatasetView) -> Pred {
                Pred::from_values(vec![0.0; data.n_rows()])
            }
        }

        let data = dataset();
        let mut result = AutoMl::new()
            .time_budget(0.2)
            .estimators([LearnerKind::Lr])
            .fit(&data)
            .unwrap();
        result.model = FittedModel::Custom(Arc::new(Opaque));
        assert!(matches!(
            result.compile(),
            Err(AutoMlError::Artifact(
                flaml_serve::ArtifactError::Unsupported(_)
            ))
        ));
    }
}
