//! Cooperative pause/resume slicing of a search: [`SearchHandle`].
//!
//! A multi-tenant service cannot let one tenant's `fit` monopolize the
//! shared pool until its budget runs out. [`SearchHandle`] chops a
//! journal-backed search into *slices* of a few trials each: a
//! scheduler runs one slice, parks the handle, and runs some other
//! tenant's slice — proportional time-sharing without threads being
//! preempted mid-trial.
//!
//! The mechanism is the journal itself. Each slice is a full
//! [`AutoMl::fit`] with `max_trials` capped a few trials past what the
//! journal already holds; the first slice creates the journal, every
//! later slice resumes from it (replaying the committed prefix through
//! the controller, which restores FLOW² incumbents, ECI state and spent
//! budget exactly). Under a virtual clock the concatenated journal's
//! canonical bytes ([`Journal::canonical_bytes`]) are **identical** to
//! a single uninterrupted run's — the header even records the run's
//! *target* trial cap rather than any slice's cap (see
//! `AutoMl::header_max_trials`) — which is what lets a crashed server
//! [`SearchHandle::attach`] to a tenant's journal and verify the
//! resumed trace against a reference run.

use crate::automl::{AutoMl, AutoMlError, AutoMlResult};
use flaml_data::Dataset;
use flaml_journal::Journal;
use std::path::PathBuf;

/// What one [`SearchHandle::run_slice`] call concluded.
#[derive(Debug)]
pub enum SliceOutcome {
    /// The slice's trial cap was hit with search budget remaining; call
    /// [`SearchHandle::run_slice`] again to continue.
    Paused {
        /// Committed trials on disk so far.
        committed: usize,
        /// Budget seconds spent so far (per the journal).
        spent: f64,
    },
    /// The search ran to completion (target trial cap or budget
    /// exhaustion) and produced its final result.
    Finished(Box<AutoMlResult>),
}

/// A journal-backed search that runs in cooperative slices (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct SearchHandle {
    settings: AutoMl,
    journal: PathBuf,
    started: bool,
    finished: bool,
    committed: usize,
    spent: f64,
}

impl SearchHandle {
    /// A handle for a fresh search journaling to `journal` (created /
    /// truncated on the first slice). `settings` carries the run's full
    /// configuration — its `max_trials` is the *target* cap the sliced
    /// search works toward; any `journal`/`resume_from` already set on
    /// it is overridden.
    pub fn new(settings: AutoMl, journal: impl Into<PathBuf>) -> SearchHandle {
        SearchHandle {
            settings,
            journal: journal.into(),
            started: false,
            finished: false,
            committed: 0,
            spent: 0.0,
        }
    }

    /// A handle resuming the existing journal at `journal` — the crash
    /// recovery path. `settings` must match the journal's header (same
    /// seed, estimators, dataset…), exactly as [`AutoMl::resume_from`]
    /// requires; mismatches surface as [`AutoMlError::ResumeMismatch`]
    /// on the first slice.
    ///
    /// # Errors
    ///
    /// Returns [`AutoMlError::Journal`] if the journal cannot be read.
    pub fn attach(
        settings: AutoMl,
        journal: impl Into<PathBuf>,
    ) -> Result<SearchHandle, AutoMlError> {
        let journal = journal.into();
        let on_disk = Journal::read(&journal)?;
        Ok(SearchHandle {
            settings,
            journal,
            started: true,
            finished: false,
            committed: on_disk.trials.len(),
            spent: on_disk.spent_budget(),
        })
    }

    /// Committed trials on disk after the last slice.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// Budget seconds spent after the last slice.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Whether a slice already returned [`SliceOutcome::Finished`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The journal path this handle drives.
    pub fn journal_path(&self) -> &std::path::Path {
        &self.journal
    }

    /// Runs up to `slice_trials` more trials (at least 1), then yields.
    ///
    /// Returns [`SliceOutcome::Finished`] when the search hit its
    /// target trial cap or exhausted its time budget within the slice —
    /// the journal then holds the complete run and the final model has
    /// been refit. Otherwise returns [`SliceOutcome::Paused`]; the
    /// journal holds every committed trial, so the handle (or a new
    /// [`SearchHandle::attach`]ed one in a different process) can
    /// continue.
    ///
    /// # Errors
    ///
    /// Any [`AutoMlError`] from the underlying fit. `NoViableModel` is
    /// special-cased: on a non-final slice it only means *no finite
    /// loss yet*, so the slice reports `Paused` instead of failing.
    pub fn run_slice(
        &mut self,
        data: &Dataset,
        slice_trials: usize,
    ) -> Result<SliceOutcome, AutoMlError> {
        let target = self.settings.max_trials;
        let mut cap = self.committed + slice_trials.max(1);
        if let Some(t) = target {
            cap = cap.min(t);
        }

        let mut slice = self.settings.clone();
        slice.max_trials = Some(cap);
        slice.header_max_trials = Some(target);
        slice.journal_path = Some(self.journal.clone());
        slice.resume = self.started;
        self.started = true;

        match slice.fit(data) {
            Ok(result) => {
                let n = result.trials.len();
                self.committed = n;
                self.spent = result.trials.last().map_or(0.0, |t| t.total_time);
                // Fewer trials than the cap allows means the budget ran
                // out mid-slice; exactly the target cap means the run is
                // done. Only a slice cut short by its own cap pauses.
                let finished =
                    n < cap || target == Some(n) || self.spent >= self.settings.time_budget;
                if finished {
                    self.finished = true;
                    Ok(SliceOutcome::Finished(Box::new(result)))
                } else {
                    Ok(SliceOutcome::Paused {
                        committed: self.committed,
                        spent: self.spent,
                    })
                }
            }
            Err(AutoMlError::NoViableModel) => {
                // No finite loss in the journal yet. If this slice was
                // cut short by its own cap the search is merely unlucky
                // so far — pause and let a later slice keep looking.
                let on_disk = Journal::read(&self.journal)?;
                self.committed = on_disk.trials.len();
                self.spent = on_disk.spent_budget();
                let out_of_road = target == Some(self.committed)
                    || self.spent >= self.settings.time_budget
                    || self.committed < cap;
                if out_of_road {
                    self.finished = true;
                    Err(AutoMlError::NoViableModel)
                } else {
                    Ok(SliceOutcome::Paused {
                        committed: self.committed,
                        spent: self.spent,
                    })
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Runs slices of `slice_trials` back to back until the search
    /// finishes. Equivalent to a single `fit`, byte-identical journal
    /// included; exists mostly for tests and simple callers.
    ///
    /// # Errors
    ///
    /// Any [`AutoMlError`] from the underlying fit.
    pub fn run_to_end(
        &mut self,
        data: &Dataset,
        slice_trials: usize,
    ) -> Result<AutoMlResult, AutoMlError> {
        loop {
            if let SliceOutcome::Finished(result) = self.run_slice(data, slice_trials)? {
                return Ok(*result);
            }
        }
    }
}
