//! Estimated Cost for Improvement (ECI), the quantity behind FLAML's
//! learner proposer (paper Section 4.2, Eq. 1).
//!
//! For each learner `l` the tracker maintains `K0` (total cost spent on
//! `l`), `K1`/`K2` (total cost at the two most recent best-error updates),
//! `δ` (the error reduction between those two best configurations) and
//! `κ` (the cost of the current best trial). From these:
//!
//! ```text
//! ECI1 = max(K0 − K1, K1 − K2)       cost to improve at the current size
//! ECI2 = c · κ                        cost to double the sample size
//! ECI  = max( (ε̃_l − ε̃*)(K0 − K2)/δ , min(ECI1, ECI2) )
//! ```
//!
//! with the paper's special case `δ = 0 → δ := ε̃_l, τ := K0`, and untried
//! learners initialized to `base_cost × cost_constant(l)` where
//! `base_cost` is the cheapest trial of the fastest learner.

/// Per-learner ECI bookkeeping.
#[derive(Debug, Clone)]
pub struct EciState {
    /// Total cost spent on this learner so far (`K0`).
    k0: f64,
    /// Total cost at the most recent best-error update (`K1`).
    k1: f64,
    /// Total cost at the second most recent best-error update (`K2`).
    k2: f64,
    /// Error reduction between the two most recent best configs (`δ`).
    delta: f64,
    /// Cost of the trial that produced the current best config (`κ`).
    kappa: f64,
    /// Best validation error observed for this learner (`ε̃_l`).
    best_err: f64,
    /// Number of best-error updates so far.
    n_updates: usize,
    /// Number of trials so far.
    n_trials: usize,
    /// ECI1 estimate used before the first trial.
    untried_estimate: f64,
}

impl EciState {
    /// Creates the state for an untried learner whose first-trial cost is
    /// estimated as `untried_estimate` (base cost x the learner's cost
    /// constant).
    pub fn new(untried_estimate: f64) -> EciState {
        EciState {
            k0: 0.0,
            k1: 0.0,
            k2: 0.0,
            delta: 0.0,
            kappa: untried_estimate.max(1e-9),
            best_err: f64::INFINITY,
            n_updates: 0,
            n_trials: 0,
            untried_estimate: untried_estimate.max(1e-9),
        }
    }

    /// Updates the untried-cost estimate (used once the fastest learner's
    /// first trial has measured the base cost).
    pub fn set_untried_estimate(&mut self, estimate: f64) {
        if self.n_trials == 0 {
            self.untried_estimate = estimate.max(1e-9);
            self.kappa = self.untried_estimate;
        }
    }

    /// Seeds the learner's best error from a prior run (warm start): the
    /// learner must now *beat* its historical best to count as improving,
    /// and the ECI gap term prices lagging learners against real prior
    /// results instead of `INFINITY`. Only meaningful before the first
    /// trial; a `NaN` is sanitized to the failure sentinel.
    pub fn set_prior_err(&mut self, err: f64) {
        if self.n_trials == 0 {
            self.best_err = if err.is_nan() { f64::INFINITY } else { err };
        }
    }

    /// Records a finished trial of this learner with the given cost and
    /// validation error. Returns `true` if the learner's best error
    /// improved.
    pub fn on_trial(&mut self, cost: f64, err: f64) -> bool {
        // A NaN error would compare false against every incumbent and
        // then leak through rebase; map it to the failure sentinel.
        let err = if err.is_nan() { f64::INFINITY } else { err };
        let cost = cost.max(1e-9);
        self.k0 += cost;
        self.n_trials += 1;
        let improved = err < self.best_err;
        if improved {
            self.delta = if self.best_err.is_finite() {
                self.best_err - err
            } else {
                0.0
            };
            self.best_err = err;
            self.k2 = self.k1;
            self.k1 = self.k0;
            self.kappa = cost;
            self.n_updates += 1;
        }
        improved
    }

    /// Overrides the learner's best error (used when the sample size grows
    /// and the incumbent config is re-scored on the larger sample).
    pub fn rebase_err(&mut self, err: f64) {
        self.best_err = if err.is_nan() { f64::INFINITY } else { err };
    }

    /// Whether this learner has been tried.
    pub fn tried(&self) -> bool {
        self.n_trials > 0
    }

    /// Number of trials recorded.
    pub fn n_trials(&self) -> usize {
        self.n_trials
    }

    /// Total cost spent on this learner (`K0`).
    pub fn total_cost(&self) -> f64 {
        self.k0
    }

    /// Best validation error (`ε̃_l`).
    pub fn best_err(&self) -> f64 {
        self.best_err
    }

    /// Cost of the current best trial (`κ`).
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// `ECI1`: estimated cost to find an improvement at the current sample
    /// size. For untried learners, the calibrated initial estimate.
    pub fn eci1(&self) -> f64 {
        if !self.tried() {
            return self.untried_estimate;
        }
        let v = (self.k0 - self.k1).max(self.k1 - self.k2);
        // Just after an update K0 == K1; at least one more trial at the
        // incumbent's cost will be needed.
        if v > 0.0 {
            v
        } else {
            self.kappa
        }
    }

    /// `ECI2`: estimated cost to re-try the current configuration with the
    /// sample size multiplied by `c` (the paper uses `c = 2`).
    pub fn eci2(&self, c: f64) -> f64 {
        c * self.kappa
    }

    /// `ECI`: estimated cost for this learner to beat the global best
    /// error `global_best` (Eq. 1).
    pub fn eci(&self, global_best: f64, c: f64) -> f64 {
        let base = self.eci1().min(self.eci2(c));
        if !self.tried() {
            return base;
        }
        let gap = self.best_err - global_best;
        if gap <= 0.0 || gap.is_nan() || !global_best.is_finite() {
            // This learner holds the best error: case (a).
            return base;
        }
        // Case (b): cost to close the gap at this learner's improvement
        // rate v = delta / tau.
        let (delta, tau) = if self.delta > 0.0 && self.n_updates >= 2 {
            (self.delta, self.k0 - self.k2)
        } else {
            // Special case: the first searched config is still the best.
            (self.best_err.max(1e-12), self.k0)
        };
        let fill_gap = gap * tau / delta.max(1e-12);
        fill_gap.max(base)
    }
}

/// Samples an index with probability proportional to `1 / eci[i]`
/// (the paper's randomized learner choice), given a uniform draw
/// `u ∈ [0, 1)`.
pub fn sample_by_inverse_eci(ecis: &[f64], u: f64) -> usize {
    debug_assert!(!ecis.is_empty());
    let weights: Vec<f64> = ecis.iter().map(|&e| 1.0 / e.max(1e-12)).collect();
    let total: f64 = weights.iter().sum();
    let mut cut = u.clamp(0.0, 1.0 - 1e-15) * total;
    for (i, w) in weights.iter().enumerate() {
        if cut < *w {
            return i;
        }
        cut -= w;
    }
    ecis.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untried_uses_calibrated_estimate() {
        let e = EciState::new(2.5);
        assert!(!e.tried());
        assert_eq!(e.eci1(), 2.5);
        assert_eq!(e.eci(0.1, 2.0), 2.5_f64.min(2.0 * 2.5));
    }

    #[test]
    fn prior_err_must_be_beaten_to_improve() {
        let mut e = EciState::new(1.0);
        e.set_prior_err(0.3);
        assert_eq!(e.best_err(), 0.3);
        assert!(!e.tried(), "a prior is not a trial");
        assert!(!e.on_trial(1.0, 0.5), "worse than the prior");
        assert!(e.on_trial(1.0, 0.2), "beats the prior");
        // After the first trial the prior is frozen in.
        e.set_prior_err(0.01);
        assert_eq!(e.best_err(), 0.2);
    }

    #[test]
    fn first_trial_sets_best() {
        let mut e = EciState::new(1.0);
        assert!(e.on_trial(3.0, 0.4));
        assert_eq!(e.best_err(), 0.4);
        assert_eq!(e.total_cost(), 3.0);
        assert_eq!(e.kappa(), 3.0);
    }

    #[test]
    fn eci1_tracks_cost_between_updates() {
        let mut e = EciState::new(1.0);
        e.on_trial(1.0, 0.5); // update 1: K1 = 1
        e.on_trial(1.0, 0.6); // no update: K0 = 2
        e.on_trial(1.0, 0.7); // no update: K0 = 3
                              // K0 - K1 = 2, K1 - K2 = 1 => ECI1 = 2.
        assert_eq!(e.eci1(), 2.0);
        e.on_trial(1.0, 0.4); // update 2: K2 = 1, K1 = 4
                              // K0 - K1 = 0, K1 - K2 = 3 => ECI1 = 3.
        assert_eq!(e.eci1(), 3.0);
    }

    #[test]
    fn eci2_is_c_times_kappa() {
        let mut e = EciState::new(1.0);
        e.on_trial(2.0, 0.5);
        assert_eq!(e.eci2(2.0), 4.0);
        e.on_trial(6.0, 0.3); // new best with cost 6
        assert_eq!(e.eci2(2.0), 12.0);
    }

    #[test]
    fn best_learner_uses_case_a() {
        let mut e = EciState::new(1.0);
        e.on_trial(1.0, 0.2);
        e.on_trial(2.0, 0.1);
        // This learner *is* the global best: ECI = min(ECI1, ECI2).
        let eci = e.eci(0.1, 2.0);
        assert_eq!(eci, e.eci1().min(e.eci2(2.0)));
    }

    #[test]
    fn lagging_learner_pays_for_the_gap() {
        let mut slow = EciState::new(1.0);
        slow.on_trial(1.0, 0.5); // update: K1 = 1
        slow.on_trial(1.0, 0.45); // update: K2 = 1, K1 = 2, δ = 0.05
                                  // Global best is far below: the gap term dominates.
        let eci = slow.eci(0.10, 2.0);
        // gap = 0.35, τ = K0 − K2 = 1 => cost = 0.35 * 1 / 0.05 = 7.
        assert!((eci - 7.0).abs() < 1e-9, "eci = {eci}");
    }

    #[test]
    fn self_correcting_failed_trials_raise_eci() {
        let mut e = EciState::new(1.0);
        e.on_trial(1.0, 0.3);
        let before = e.eci(0.2, 2.0);
        e.on_trial(2.0, 0.9); // expensive failure
        let after = e.eci(0.2, 2.0);
        assert!(after > before, "{after} <= {before}");
    }

    #[test]
    fn delta_zero_special_case() {
        let mut e = EciState::new(1.0);
        e.on_trial(4.0, 0.5); // single update => δ = 0 case
        let eci = e.eci(0.25, 2.0);
        // δ := ε̃_l = 0.5, τ := K0 = 4; gap = 0.25 => 0.25 * 4 / 0.5 = 2.
        // min(ECI1, ECI2) = min(4, 8) = 4 => max(2, 4) = 4.
        assert_eq!(eci, 4.0);
    }

    #[test]
    fn rebase_overrides_best_error() {
        let mut e = EciState::new(1.0);
        e.on_trial(1.0, 0.2);
        e.rebase_err(0.35);
        assert_eq!(e.best_err(), 0.35);
    }

    #[test]
    fn inverse_sampling_prefers_low_eci() {
        let ecis = [1.0, 9.0];
        // Weights 1 and 1/9: the first index owns 90% of the mass.
        let mut first = 0;
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            if sample_by_inverse_eci(&ecis, u) == 0 {
                first += 1;
            }
        }
        assert!((850..=950).contains(&first), "{first}/1000");
    }

    #[test]
    fn inverse_sampling_covers_all_indices() {
        let ecis = [1.0, 1.0, 1.0];
        let mut seen = [false; 3];
        for i in 0..300 {
            seen[sample_by_inverse_eci(&ecis, i as f64 / 300.0)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every learner keeps a chance");
    }
}
