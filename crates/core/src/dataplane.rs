//! The zero-copy data plane: a trial-wide cache of prepared data.
//!
//! Every trial at sample size `s` under a fixed resampling strategy uses
//! the *same* derived data: the prefix sample, its train/validation
//! folds, and — for binned learners — the per-fold sorted-unique feature
//! values and pre-binned `u32` matrices. The seed controller re-derived
//! all of it per trial by materializing `O(rows × features)` copies; the
//! [`DataPlane`] derives each artifact once as `Arc`-backed
//! [`DatasetView`]s / [`PreparedBins`] and hands trials cheap clones.
//!
//! Caching is **observationally pure**: a cached artifact is bit-for-bit
//! the artifact a fresh computation produces (views iterate rows in
//! selection order; [`flaml_learners::BinMapper::from_sorted`] equals a
//! direct fit), so the search trace is byte-identical whether the plane
//! is enabled, disabled (which reproduces the seed's per-trial copy
//! path), or evicting under memory pressure. Only the hit/miss/eviction
//! counters and wall time observe the cache.
//!
//! The plane is owned and mutated by the controller's main thread at
//! proposal time — worker jobs only read the `Arc`s captured in their
//! [`TrialData`] — so no locking is needed and the preparation order is
//! deterministic at any worker count.

use crate::resample::ResampleStrategy;
use flaml_data::{stratified_kfold, train_test_split, DatasetView};
use flaml_learners::{PreparedBins, PreparedSort};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One resampling fold, prepared for zero-copy consumption by a trial.
#[derive(Debug, Clone)]
pub struct FoldData {
    /// Training rows, as a view into the root storage.
    pub train: DatasetView,
    /// Validation rows, as a view into the root storage.
    pub valid: DatasetView,
    /// The validation targets, gathered once per sample size.
    pub valid_target: Arc<[f64]>,
    /// The pre-binned training matrix for the trial's `max_bin`, when
    /// the learner bins its features; `None` for unbinned learners.
    pub bins: Option<Arc<PreparedBins>>,
}

/// Everything one trial needs from the data plane: the sample view plus
/// its prepared folds (holdout = one fold; an empty fold list records a
/// deterministic split failure, which the trial reports as aborted).
#[derive(Debug, Clone)]
pub struct TrialData {
    /// The first-`s`-rows sample the trial evaluates on.
    pub sample: DatasetView,
    /// The prepared folds, in fold order.
    pub folds: Vec<FoldData>,
}

/// Per-trial data-preparation statistics, and (summed) run totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Prepared artifacts served from the cache.
    pub prepared_hits: usize,
    /// Prepared artifacts computed fresh.
    pub prepared_misses: usize,
    /// Cached artifacts evicted under the byte budget while preparing
    /// this trial's data.
    pub prepared_evictions: usize,
    /// Bytes the copy-based seed path would have allocated to hand this
    /// trial its sample and fold datasets (a pure function of the trial,
    /// identical whether the cache hit or missed). Zero when the plane
    /// is disabled — the copies then actually happen.
    pub bytes_copied_saved: usize,
}

/// The fold views shared by every trial at one sample size.
#[derive(Debug)]
struct SampleFolds {
    sample: DatasetView,
    folds: Vec<CachedFold>,
}

#[derive(Debug, Clone)]
struct CachedFold {
    train: DatasetView,
    valid: DatasetView,
    valid_target: Arc<[f64]>,
}

/// Cache-entry identity for the insertion-order eviction queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKey {
    Folds(usize),
    Sort(usize, usize),
    Bins(usize, usize, usize),
}

/// The prepared-data cache, keyed by `(sample_size, fold, max_bin)`.
///
/// Eviction is deterministic LRU-by-insertion under a byte budget:
/// entries leave in exactly the order they were created, and creation
/// order is the (deterministic) trial proposal order — so two runs of
/// the same search evict identically, and an evicted artifact is simply
/// recomputed (bit-identically) on next use.
#[derive(Debug)]
pub struct DataPlane {
    root: DatasetView,
    strategy: ResampleStrategy,
    enabled: bool,
    budget_bytes: usize,
    folds: BTreeMap<usize, Arc<SampleFolds>>,
    sorts: BTreeMap<(usize, usize), Arc<PreparedSort>>,
    bins: BTreeMap<(usize, usize, usize), Arc<PreparedBins>>,
    order: VecDeque<(CacheKey, usize)>,
    held_bytes: usize,
    totals: PrepStats,
}

impl DataPlane {
    /// A data plane over the (pre-shuffled) root view. `enabled = false`
    /// disables the plane entirely and reproduces the seed's copy-based
    /// data flow: every trial materializes its sample and fold datasets
    /// as owned copies and prepares no bins, so each fit re-derives its
    /// binning internally. The trial results are bit-identical either
    /// way; only time and allocations differ.
    pub fn new(
        root: DatasetView,
        strategy: ResampleStrategy,
        enabled: bool,
        budget_bytes: usize,
    ) -> DataPlane {
        DataPlane {
            root,
            strategy,
            enabled,
            budget_bytes,
            folds: BTreeMap::new(),
            sorts: BTreeMap::new(),
            bins: BTreeMap::new(),
            order: VecDeque::new(),
            held_bytes: 0,
            totals: PrepStats::default(),
        }
    }

    /// Prepares (or fetches) everything a trial at `sample_size` needs.
    /// `max_bin` is the trial's binning resolution
    /// ([`crate::Estimator::max_bin`]); `None` skips bin preparation.
    pub fn prepare(
        &mut self,
        sample_size: usize,
        max_bin: Option<usize>,
    ) -> (TrialData, PrepStats) {
        if !self.enabled {
            return self.prepare_copied(sample_size);
        }
        let mut stats = PrepStats::default();
        let views = self.sample_folds(sample_size, &mut stats);

        // What the copy path allocated per trial: the materialized prefix
        // sample plus a materialized train and validation dataset per fold.
        stats.bytes_copied_saved += views.sample.materialized_bytes();
        for f in &views.folds {
            stats.bytes_copied_saved += f.train.materialized_bytes() + f.valid.materialized_bytes();
        }

        let folds = views
            .folds
            .iter()
            .enumerate()
            .map(|(fi, f)| FoldData {
                train: f.train.clone(),
                valid: f.valid.clone(),
                valid_target: f.valid_target.clone(),
                bins: max_bin.map(|mb| self.fold_bins(&views, sample_size, fi, mb, &mut stats)),
            })
            .collect();
        let trial = TrialData {
            sample: views.sample.clone(),
            folds,
        };
        self.totals.prepared_hits += stats.prepared_hits;
        self.totals.prepared_misses += stats.prepared_misses;
        self.totals.prepared_evictions += stats.prepared_evictions;
        self.totals.bytes_copied_saved += stats.bytes_copied_saved;
        (trial, stats)
    }

    /// The seed's per-trial copy path, taken when the plane is disabled:
    /// the prefix sample and each fold's train/validation rows become
    /// owned [`flaml_data::Dataset`] copies (root views over fresh
    /// storage) and no bins are prepared, so every fit re-sorts and
    /// re-quantizes its columns. Nothing is cached and nothing is saved —
    /// only the fold derivation counts as a (fresh) prepared artifact.
    fn prepare_copied(&mut self, s: usize) -> (TrialData, PrepStats) {
        let stats = PrepStats {
            prepared_misses: 1,
            ..PrepStats::default()
        };
        let views = compute_folds(&self.root, self.strategy, s);
        let folds = views
            .folds
            .iter()
            .map(|f| FoldData {
                train: f.train.materialize().view(),
                valid: f.valid.materialize().view(),
                valid_target: f.valid_target.clone(),
                bins: None,
            })
            .collect();
        let trial = TrialData {
            sample: views.sample.materialize().view(),
            folds,
        };
        self.totals.prepared_misses += stats.prepared_misses;
        (trial, stats)
    }

    /// Run totals across every `prepare` call so far.
    pub fn totals(&self) -> PrepStats {
        self.totals
    }

    /// Bytes currently held by cached artifacts.
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    fn sample_folds(&mut self, s: usize, stats: &mut PrepStats) -> Arc<SampleFolds> {
        if let Some(v) = self.folds.get(&s) {
            stats.prepared_hits += 1;
            return v.clone();
        }
        stats.prepared_misses += 1;
        let v = Arc::new(compute_folds(&self.root, self.strategy, s));
        let bytes: usize = v
            .folds
            .iter()
            .map(|f| {
                f.train.selection_bytes()
                    + f.valid.selection_bytes()
                    + f.valid_target.len() * std::mem::size_of::<f64>()
            })
            .sum();
        self.folds.insert(s, v.clone());
        stats.prepared_evictions += self.remember(CacheKey::Folds(s), bytes);
        v
    }

    fn fold_sort(
        &mut self,
        views: &SampleFolds,
        s: usize,
        fi: usize,
        stats: &mut PrepStats,
    ) -> Arc<PreparedSort> {
        if let Some(x) = self.sorts.get(&(s, fi)) {
            stats.prepared_hits += 1;
            return x.clone();
        }
        stats.prepared_misses += 1;
        let sort = Arc::new(PreparedSort::compute(&views.folds[fi].train));
        let bytes = sort.heap_bytes();
        self.sorts.insert((s, fi), sort.clone());
        stats.prepared_evictions += self.remember(CacheKey::Sort(s, fi), bytes);
        sort
    }

    fn fold_bins(
        &mut self,
        views: &SampleFolds,
        s: usize,
        fi: usize,
        mb: usize,
        stats: &mut PrepStats,
    ) -> Arc<PreparedBins> {
        if let Some(b) = self.bins.get(&(s, fi, mb)) {
            stats.prepared_hits += 1;
            return b.clone();
        }
        stats.prepared_misses += 1;
        let sort = self.fold_sort(views, s, fi, stats);
        let prepared = Arc::new(PreparedBins::prepare(&sort, &views.folds[fi].train, mb));
        let bytes = prepared.heap_bytes();
        self.bins.insert((s, fi, mb), prepared.clone());
        stats.prepared_evictions += self.remember(CacheKey::Bins(s, fi, mb), bytes);
        prepared
    }

    /// Records a fresh entry and evicts from the front of the insertion
    /// queue while over budget (never the entry just inserted, so a trial
    /// always finds its own artifacts). Returns how many entries were
    /// evicted, for the trial's `prepared_evictions` accounting.
    fn remember(&mut self, key: CacheKey, bytes: usize) -> usize {
        self.held_bytes += bytes;
        self.order.push_back((key, bytes));
        let mut evicted = 0;
        while self.held_bytes > self.budget_bytes && self.order.len() > 1 {
            let (victim, freed) = self.order.pop_front().expect("len checked");
            self.held_bytes -= freed;
            evicted += 1;
            match victim {
                CacheKey::Folds(s) => {
                    self.folds.remove(&s);
                }
                CacheKey::Sort(s, fi) => {
                    self.sorts.remove(&(s, fi));
                }
                CacheKey::Bins(s, fi, mb) => {
                    self.bins.remove(&(s, fi, mb));
                }
            }
        }
        evicted
    }
}

/// Derives the fold views for the first `s` rows of `root` — exactly the
/// rows and order the copy path's `prefix` + `select` produced. An empty
/// fold list records a deterministic split failure.
fn compute_folds(root: &DatasetView, strategy: ResampleStrategy, s: usize) -> SampleFolds {
    let sample = root.prefix(s);
    let folds_idx = match strategy {
        ResampleStrategy::Holdout { ratio } => {
            train_test_split(sample.n_rows(), ratio).map(|f| vec![f])
        }
        ResampleStrategy::Cv { folds } => stratified_kfold(&sample, folds),
    };
    let folds = match folds_idx {
        Ok(idx) => idx
            .iter()
            .map(|f| {
                let train = sample.select(&f.train);
                let valid = sample.select(&f.valid);
                let valid_target: Arc<[f64]> = valid.gather_target().into();
                CachedFold {
                    train,
                    valid,
                    valid_target,
                }
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    SampleFolds { sample, folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_data::{Dataset, Task};

    fn data(n: usize) -> Dataset {
        let x0: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64).collect();
        let x1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new("dp", Task::Binary, vec![x0, x1], y).unwrap()
    }

    #[test]
    fn cached_trial_data_equals_fresh() {
        let d = data(200).shuffled(3);
        let strategy = ResampleStrategy::Cv { folds: 5 };
        let mut plane = DataPlane::new(d.view(), strategy, true, usize::MAX);
        let mut cold = DataPlane::new(d.view(), strategy, false, 0);
        let (a, sa) = plane.prepare(100, Some(255));
        let (b, sb) = plane.prepare(100, Some(255));
        let (c, sc) = cold.prepare(100, Some(255));
        assert_eq!(sa.prepared_hits, 0);
        assert!(sb.prepared_hits > 0 && sb.prepared_misses == 0);
        assert_eq!(sa.bytes_copied_saved, sb.bytes_copied_saved);
        assert!(sa.bytes_copied_saved > 0);
        for (x, y) in a.folds.iter().zip(&b.folds) {
            assert_eq!(
                x.train.materialize().fingerprint(),
                y.train.materialize().fingerprint()
            );
            assert_eq!(x.valid_target, y.valid_target);
            let (xb, yb) = (x.bins.as_ref().unwrap(), y.bins.as_ref().unwrap());
            assert_eq!(xb.max_bin(), yb.max_bin());
            for j in 0..2 {
                assert_eq!(xb.binned().column(j), yb.binned().column(j));
            }
        }
        // The disabled plane reproduces the seed's copy path: same rows,
        // owned storage, no prepared bins, nothing saved.
        assert_eq!(
            sc,
            PrepStats {
                prepared_misses: 1,
                ..PrepStats::default()
            }
        );
        assert!(!c.sample.same_root(&d.view()));
        for (x, y) in a.folds.iter().zip(&c.folds) {
            assert_eq!(
                x.train.materialize().fingerprint(),
                y.train.materialize().fingerprint()
            );
            assert_eq!(x.valid_target, y.valid_target);
            assert!(y.bins.is_none());
            assert!(!y.train.same_root(&d.view()));
        }
    }

    #[test]
    fn views_share_root_storage() {
        let d = data(100).shuffled(0);
        let mut plane = DataPlane::new(
            d.view(),
            ResampleStrategy::Holdout { ratio: 0.1 },
            true,
            usize::MAX,
        );
        let (t, stats) = plane.prepare(50, None);
        assert!(t.sample.same_root(&d.view()));
        assert_eq!(t.folds.len(), 1);
        assert!(t.folds[0].train.same_root(&d.view()));
        assert!(t.folds[0].bins.is_none());
        // 50 rows x (2 features + target) x 8 bytes for the sample, plus
        // the train/valid materializations the copy path made.
        assert_eq!(
            stats.bytes_copied_saved,
            (50 + 45 + 5) * 3 * std::mem::size_of::<f64>()
        );
    }

    #[test]
    fn byte_budget_evicts_in_insertion_order() {
        let d = data(300).shuffled(1);
        let strategy = ResampleStrategy::Cv { folds: 5 };
        // A budget too small for two sample sizes: preparing the second
        // evicts the first, so revisiting the first misses again.
        let mut plane = DataPlane::new(d.view(), strategy, true, 4_000);
        plane.prepare(100, Some(255));
        let (_, s2) = plane.prepare(200, Some(255));
        assert!(plane.held_bytes() <= 4_000 + 2_000, "budget roughly held");
        assert!(
            s2.prepared_evictions > 0,
            "the second sample size must push the first out"
        );
        let (_, s3) = plane.prepare(100, Some(255));
        assert!(
            s3.prepared_misses > 0,
            "evicted sample size is recomputed, not served"
        );
        assert!(
            plane.totals().prepared_evictions >= s2.prepared_evictions,
            "run totals accumulate evictions"
        );
    }

    #[test]
    fn split_failure_yields_empty_folds() {
        let d = data(4);
        let mut plane = DataPlane::new(
            d.view(),
            ResampleStrategy::Cv { folds: 5 },
            true,
            usize::MAX,
        );
        let (t, _) = plane.prepare(3, None);
        assert!(t.folds.is_empty(), "3 rows cannot make 5 folds");
    }
}
