//! Budget accounting for the AutoML controller.
//!
//! The paper charges each trial its measured CPU time. For deterministic
//! tests and reproducible experiment traces this crate also supports a
//! *virtual* clock that charges an analytic cost model instead; the
//! controller's behaviour (ECI updates, sample-size schedule, stopping)
//! is then a pure function of the seed.

use std::time::Instant;

/// Facts about a trial that a virtual cost model may use.
#[derive(Debug, Clone, Copy)]
pub struct TrialInfo {
    /// The trained learner's relative cost constant (see
    /// [`crate::LearnerKind::cost_constant`]).
    pub learner_cost_constant: f64,
    /// Number of training rows used (sample size x folds handled via
    /// `n_fits`).
    pub sample_size: usize,
    /// Number of feature columns.
    pub n_features: usize,
    /// Rough model-complexity factor (e.g. trees x leaves).
    pub cost_factor: f64,
    /// Number of model fits the trial performed (k for k-fold CV, 1 for
    /// holdout).
    pub n_fits: usize,
}

/// Where trial costs come from.
#[derive(Debug, Clone, Copy)]
pub enum TimeSource {
    /// Measured wall-clock seconds (the paper's setting).
    Wall,
    /// A deterministic analytic model of trial cost in virtual seconds.
    Virtual(fn(&TrialInfo) -> f64),
}

impl TimeSource {
    /// Stable lowercase name (`"wall"` / `"virtual"`), as recorded in a
    /// trial journal's header. Distinct virtual cost models are not
    /// distinguished: replay re-applies *recorded* costs, so only trials
    /// run after the resume point are charged under the current model.
    pub fn name(&self) -> &'static str {
        match self {
            TimeSource::Wall => "wall",
            TimeSource::Virtual(_) => "virtual",
        }
    }
}

/// A reasonable default virtual cost model: linear in rows x features x
/// fits, scaled by model complexity. Only relative magnitudes matter.
pub fn default_virtual_cost(info: &TrialInfo) -> f64 {
    let volume = info.sample_size as f64 * info.n_features as f64 * info.n_fits as f64;
    let complexity = 1.0 + info.cost_factor / 256.0;
    let learner_factor = info.learner_cost_constant;
    // Scaled so that a cheap init trial on ~500 x 10 data costs about
    // 0.05 virtual seconds: a 1-second virtual budget buys tens of trials,
    // keeping virtual-clock tests fast while preserving relative costs.
    1e-5 * volume * complexity * learner_factor
}

/// Tracks elapsed budget in wall or virtual seconds.
#[derive(Debug)]
pub struct BudgetClock {
    source: TimeSource,
    start: Instant,
    virtual_now: f64,
    /// Budget charged by [`BudgetClock::advance`] on a wall clock —
    /// time a resumed run's replayed trials already spent in an earlier
    /// process, which `start.elapsed()` cannot see.
    wall_offset: f64,
}

impl BudgetClock {
    /// Starts the clock.
    pub fn new(source: TimeSource) -> BudgetClock {
        BudgetClock {
            source,
            start: Instant::now(),
            virtual_now: 0.0,
            wall_offset: 0.0,
        }
    }

    /// Whether this clock runs on wall time.
    pub fn is_wall(&self) -> bool {
        matches!(self.source, TimeSource::Wall)
    }

    /// Seconds elapsed since the clock started (plus any
    /// [`BudgetClock::advance`]d pre-spent budget).
    pub fn elapsed(&self) -> f64 {
        match self.source {
            TimeSource::Wall => self.start.elapsed().as_secs_f64() + self.wall_offset,
            TimeSource::Virtual(_) => self.virtual_now,
        }
    }

    /// Advances the clock by an externally recorded cost without charging
    /// a trial — how journal replay re-applies a previous process's
    /// spending. On a virtual clock this performs the same `+=` a live
    /// [`BudgetClock::charge`] would have, so replaying a run's recorded
    /// per-attempt costs in order reproduces its elapsed time
    /// bit-for-bit.
    pub fn advance(&mut self, secs: f64) {
        match self.source {
            TimeSource::Wall => self.wall_offset += secs,
            TimeSource::Virtual(_) => self.virtual_now += secs,
        }
    }

    /// Charges one trial: returns the cost in this clock's seconds and
    /// advances virtual time if applicable. `measured` is the trial's
    /// measured wall seconds.
    pub fn charge(&mut self, info: &TrialInfo, measured: f64) -> f64 {
        match self.source {
            TimeSource::Wall => measured.max(1e-9),
            TimeSource::Virtual(model) => {
                let cost = model(info).max(1e-9);
                self.virtual_now += cost;
                cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(s: usize) -> TrialInfo {
        TrialInfo {
            learner_cost_constant: 1.0,
            sample_size: s,
            n_features: 10,
            cost_factor: 16.0,
            n_fits: 1,
        }
    }

    #[test]
    fn virtual_clock_accumulates_model_costs() {
        let mut clock = BudgetClock::new(TimeSource::Virtual(default_virtual_cost));
        assert_eq!(clock.elapsed(), 0.0);
        let c1 = clock.charge(&info(1000), 123.0);
        let c2 = clock.charge(&info(2000), 456.0);
        assert!((clock.elapsed() - (c1 + c2)).abs() < 1e-12);
        assert!((c2 / c1 - 2.0).abs() < 1e-9, "cost linear in sample size");
    }

    #[test]
    fn advance_replays_costs_bit_for_bit() {
        let mut live = BudgetClock::new(TimeSource::Virtual(default_virtual_cost));
        let costs: Vec<f64> = (1..=5).map(|s| live.charge(&info(s * 700), 0.0)).collect();
        let mut replay = BudgetClock::new(TimeSource::Virtual(default_virtual_cost));
        for c in costs {
            replay.advance(c);
        }
        assert_eq!(live.elapsed().to_bits(), replay.elapsed().to_bits());
    }

    #[test]
    fn advance_offsets_a_wall_clock() {
        let mut clock = BudgetClock::new(TimeSource::Wall);
        clock.advance(10.0);
        assert!(clock.elapsed() >= 10.0);
    }

    #[test]
    fn wall_clock_charges_measured_time() {
        let mut clock = BudgetClock::new(TimeSource::Wall);
        let c = clock.charge(&info(1000), 0.25);
        assert_eq!(c, 0.25);
        assert!(clock.is_wall());
    }

    #[test]
    fn default_model_scales_with_learner_constant() {
        let lgbm = default_virtual_cost(&info(1000));
        let lr = default_virtual_cost(&TrialInfo {
            learner_cost_constant: 160.0,
            ..info(1000)
        });
        assert!((lr / lgbm - 160.0).abs() < 1e-9);
    }

    #[test]
    fn cv_fits_multiply_cost() {
        let one = default_virtual_cost(&info(1000));
        let five = default_virtual_cost(&TrialInfo {
            n_fits: 5,
            ..info(1000)
        });
        assert!((five / one - 5.0).abs() < 1e-9);
    }
}
