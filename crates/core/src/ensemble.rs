//! Optional stacked-ensemble post-processing (paper appendix): after the
//! search, the best configuration of each learner becomes an ensemble
//! member; a linear meta-learner is trained on their cross-validated
//! out-of-fold predictions; members are then retrained on the full
//! training data. Off by default (FLAML keeps overhead low), enabled with
//! [`crate::AutoMl::ensemble`].

use crate::custom::Estimator;
use flaml_data::{stratified_kfold, Dataset, DatasetView};
use flaml_learners::{fit_meta, meta_features, FittedModel, StackedModel};
use flaml_search::{Config, SearchSpace};
use std::time::Duration;

/// One ensemble member: a learner with its best searched configuration.
#[derive(Debug, Clone)]
pub struct MemberSpec {
    /// The learner.
    pub kind: Estimator,
    /// Its best configuration.
    pub config: Config,
    /// The configuration's search space.
    pub space: SearchSpace,
    /// The validation error that ranked it.
    pub error: f64,
}

/// Builds a stacked ensemble from the top member specs (ranked by error,
/// at most `max_members`), using `folds`-fold out-of-fold predictions for
/// the meta-learner.
///
/// Returns `None` when fewer than two viable members exist or any
/// training step fails — the caller then falls back to the single best
/// model, so enabling ensembles can never lose a result.
pub fn build_stacked(
    shuffled: &DatasetView,
    mut specs: Vec<MemberSpec>,
    max_members: usize,
    folds: usize,
    seed: u64,
    budget: Option<Duration>,
) -> Option<FittedModel> {
    specs.retain(|s| s.error.is_finite());
    specs.sort_by(|a, b| a.error.total_cmp(&b.error));
    specs.truncate(max_members.max(2));
    if specs.len() < 2 {
        return None;
    }
    let fold_idx = stratified_kfold(shuffled, folds).ok()?;
    let n = shuffled.n_rows();

    // Out-of-fold predictions, one slot per (row, member) feature column.
    // Build per-fold member models and scatter their validation
    // predictions into OOF row order.
    let mut oof_members: Vec<Vec<FittedModel>> = Vec::with_capacity(fold_idx.len());
    for fold in &fold_idx {
        let train = shuffled.select(&fold.train);
        let mut models = Vec::with_capacity(specs.len());
        for spec in &specs {
            let m = spec
                .kind
                .fit(&train, &spec.config, &spec.space, seed, budget)
                .ok()?;
            models.push(m);
        }
        oof_members.push(models);
    }

    // Assemble the OOF meta-feature dataset: evaluate each fold's models
    // on that fold's validation rows, then stitch rows back into original
    // order. Column count comes from a probe on the first fold.
    let probe = meta_features(
        &oof_members[0],
        shuffled.select(&fold_idx[0].valid),
        fold_idx[0]
            .valid
            .iter()
            .map(|&i| shuffled.target_at(i))
            .collect(),
    );
    let n_meta = probe.n_features();
    let mut columns = vec![vec![0.0f64; n]; n_meta];
    let mut target = vec![0.0f64; n];
    for (fold, models) in fold_idx.iter().zip(&oof_members) {
        let valid = shuffled.select(&fold.valid);
        let feats = meta_features(
            models,
            &valid,
            fold.valid.iter().map(|&i| shuffled.target_at(i)).collect(),
        );
        for (local, &global) in fold.valid.iter().enumerate() {
            for (c, column) in columns.iter_mut().enumerate() {
                column[global] = feats.value(local, c);
            }
            target[global] = shuffled.target_at(global);
        }
    }
    let oof = Dataset::new("oof", shuffled.task(), columns, target).ok()?;
    let meta = fit_meta(&oof, seed).ok()?;

    // Retrain members on the full data for the deployable ensemble.
    let mut members = Vec::with_capacity(specs.len());
    for spec in &specs {
        let m = spec
            .kind
            .fit(shuffled, &spec.config, &spec.space, seed, budget)
            .ok()?;
        members.push(m);
    }
    Some(StackedModel::new(members, meta, shuffled.task()).into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LearnerKind;
    use flaml_data::Task;
    use flaml_metrics::Metric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| f64::from(x0[i] + 0.3 * x1[i] + 0.1 * rng.gen::<f64>() > 0.65))
            .collect();
        Dataset::new("e", Task::Binary, vec![x0, x1], y).unwrap()
    }

    fn spec(kind: crate::LearnerKind, n: usize, error: f64) -> MemberSpec {
        let space = kind.space(n);
        MemberSpec {
            kind: Estimator::Builtin(kind),
            config: space.init_config(),
            space,
            error,
        }
    }

    #[test]
    fn builds_a_working_ensemble() {
        let d = data(400).shuffled(0);
        let specs = vec![
            spec(LearnerKind::LightGbm, 400, 0.1),
            spec(LearnerKind::Rf, 400, 0.2),
            spec(LearnerKind::Lr, 400, 0.3),
        ];
        let model = build_stacked(&d.view(), specs, 4, 5, 0, None).expect("ensemble builds");
        let pred = model.predict(&d);
        let loss = Metric::RocAuc.loss(&pred, d.target()).unwrap();
        assert!(loss < 0.2, "ensemble auc regret {loss}");
        assert!(matches!(model, FittedModel::Stacked(_)));
    }

    #[test]
    fn single_member_returns_none() {
        let d = data(200).shuffled(0);
        let specs = vec![spec(LearnerKind::LightGbm, 200, 0.1)];
        assert!(build_stacked(&d.view(), specs, 4, 5, 0, None).is_none());
    }

    #[test]
    fn infinite_error_members_are_dropped() {
        let d = data(200).shuffled(0);
        let specs = vec![
            spec(LearnerKind::LightGbm, 200, 0.1),
            spec(LearnerKind::Rf, 200, f64::INFINITY),
        ];
        assert!(
            build_stacked(&d.view(), specs, 4, 5, 0, None).is_none(),
            "one finite member is not an ensemble"
        );
    }

    #[test]
    fn max_members_caps_size() {
        let d = data(400).shuffled(0);
        let specs = vec![
            spec(LearnerKind::LightGbm, 400, 0.1),
            spec(LearnerKind::Rf, 400, 0.2),
            spec(LearnerKind::ExtraTrees, 400, 0.3),
            spec(LearnerKind::Lr, 400, 0.4),
        ];
        let model = build_stacked(&d.view(), specs, 2, 5, 0, None).expect("ensemble builds");
        let FittedModel::Stacked(s) = model else {
            panic!("expected stacked model");
        };
        assert_eq!(s.n_members(), 2, "capped at the 2 best members");
    }
}
