//! `SearchHandle` cooperative slicing: a search chopped into small
//! slices must leave the exact journal a single uninterrupted run
//! leaves — byte-identical canonical bytes under the virtual clock
//! (`wall_secs`, the one physical-time field, is excluded) — and a
//! handle attached to a half-finished journal (the crash path) must
//! continue it to the same bytes.

use flaml_core::{
    default_virtual_cost, AutoMl, Journal, LearnerKind, SearchHandle, SliceOutcome, TimeSource,
};
use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    Dataset::new("handle-test", Task::Binary, vec![x0, x1], y).unwrap()
}

fn base() -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(5.0)
        .max_trials(18)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .seed(7)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("flaml_handle_{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn sliced_search_journal_is_byte_identical_to_single_shot() {
    let data = binary_dataset(600, 11);

    let reference_path = scratch("ref");
    let reference = base().journal(&reference_path).fit(&data).unwrap();

    let sliced_path = scratch("sliced");
    let mut handle = SearchHandle::new(base(), &sliced_path);
    let mut slices = 0;
    let result = loop {
        slices += 1;
        match handle.run_slice(&data, 4).unwrap() {
            SliceOutcome::Paused { committed, spent } => {
                assert_eq!(committed, handle.committed());
                assert!(spent > 0.0);
                assert!(!handle.is_finished());
            }
            SliceOutcome::Finished(result) => break result,
        }
    };
    assert!(slices > 2, "18 trials in slices of 4 must pause repeatedly");
    assert!(handle.is_finished());
    assert_eq!(result.trials.len(), reference.trials.len());
    assert_eq!(result.best_learner, reference.best_learner);
    assert_eq!(result.best_error.to_bits(), reference.best_error.to_bits());

    let reference_bytes = Journal::read(&reference_path).unwrap().canonical_bytes();
    let sliced_bytes = Journal::read(&sliced_path).unwrap().canonical_bytes();
    assert_eq!(
        reference_bytes, sliced_bytes,
        "sliced journal must be byte-identical to the single-shot journal"
    );
    let _ = std::fs::remove_file(&reference_path);
    let _ = std::fs::remove_file(&sliced_path);
}

#[test]
fn attach_continues_a_crashed_search_to_identical_bytes() {
    let data = binary_dataset(600, 11);

    let reference_path = scratch("crash_ref");
    base().journal(&reference_path).fit(&data).unwrap();

    // "Crash": run a few slices, then drop the handle on the floor.
    let crashed_path = scratch("crash");
    let mut first = SearchHandle::new(base(), &crashed_path);
    assert!(matches!(
        first.run_slice(&data, 5).unwrap(),
        SliceOutcome::Paused { committed: 5, .. }
    ));
    let mid = Journal::read(&crashed_path).unwrap();
    assert_eq!(mid.trials.len(), 5);
    drop(first);

    // A new process attaches to the journal and finishes the search.
    let mut second = SearchHandle::attach(base(), &crashed_path).unwrap();
    assert_eq!(second.committed(), 5);
    assert!(second.spent() > 0.0);
    let result = second.run_to_end(&data, 5).unwrap();
    assert_eq!(result.trials.len(), 18);

    assert_eq!(
        Journal::read(&reference_path).unwrap().canonical_bytes(),
        Journal::read(&crashed_path).unwrap().canonical_bytes(),
        "resumed journal must be byte-identical to an uninterrupted run"
    );
    let _ = std::fs::remove_file(&reference_path);
    let _ = std::fs::remove_file(&crashed_path);
}

#[test]
fn budget_exhaustion_finishes_before_the_trial_cap() {
    let data = binary_dataset(600, 11);
    let path = scratch("budget");
    // A budget far too small for 18 trials: slicing must detect the
    // budget stop (fewer trials than the slice cap allows) and finish.
    let mut handle = SearchHandle::new(base().time_budget(0.05), &path);
    let result = handle.run_to_end(&data, 4).unwrap();
    assert!(handle.is_finished());
    assert!(
        result.trials.len() < 18,
        "0.05s of virtual budget cannot afford the full trial cap"
    );
    let _ = std::fs::remove_file(&path);
}
