//! Journal-backed persistence beyond resume (which determinism.rs
//! covers): trial records surviving JSON round trips, rebuilding the
//! best model from a log without searching, and warm-starting a fresh
//! search from a prior run's best configurations.

use flaml_core::{
    default_virtual_cost, retrain_from_log, AutoMl, Journal, LearnerKind, TimeSource, TrialMode,
    TrialRecord, TrialStatus,
};
use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    Dataset::new("journal-test", Task::Binary, vec![x0, x1], y).unwrap()
}

fn base() -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.0)
        .max_trials(24)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .seed(7)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("flaml_journal_{tag}_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn trial_record_round_trips_through_json() {
    let statuses = [
        TrialStatus::Ok,
        TrialStatus::Failed,
        TrialStatus::TimedOut,
        TrialStatus::Panicked,
        TrialStatus::NonFiniteLoss,
    ];
    for (i, status) in statuses.into_iter().enumerate() {
        let failed = status != TrialStatus::Ok;
        let record = TrialRecord {
            iter: i + 1,
            learner: "lightgbm".into(),
            config: "tree_num=4".into(),
            sample_size: 1_000,
            // Failure sentinel for every non-ok status: the +inf loss
            // must survive the trip (it renders as an Infinity token).
            error: if failed { f64::INFINITY } else { 0.125 },
            cost: 0.5,
            total_time: 1.5 * (i + 1) as f64,
            mode: if i % 2 == 0 {
                TrialMode::Search
            } else {
                TrialMode::SampleUp
            },
            improved_global: !failed,
            best_error_so_far: 0.125,
            eci_snapshot: vec![("lightgbm".into(), 2.5), ("rf".into(), 4.0)],
            timed_out: status == TrialStatus::TimedOut,
            panicked: status == TrialStatus::Panicked,
            status,
            n_retries: i,
            config_values: vec![4.0, 0.1, 1e-10],
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: TrialRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.iter, record.iter);
        assert_eq!(back.learner, record.learner);
        assert_eq!(back.error.to_bits(), record.error.to_bits(), "{json}");
        assert_eq!(back.cost.to_bits(), record.cost.to_bits());
        assert_eq!(back.mode, record.mode);
        assert_eq!(back.status, record.status);
        assert_eq!(back.timed_out, record.timed_out);
        assert_eq!(back.panicked, record.panicked);
        assert_eq!(back.n_retries, record.n_retries);
        assert_eq!(
            back.config_values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            record
                .config_values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        // Render -> parse -> render is a fixed point, so journaled and
        // re-serialized traces compare byte-for-byte.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}

#[test]
fn retrain_from_log_reproduces_the_best_model_exactly() {
    let data = binary_dataset(600, 11);
    let path = scratch("retrain");
    let result = base().journal(&path).fit(&data).unwrap();

    let retrained = retrain_from_log(&path, &data).unwrap();
    assert_eq!(retrained.learner, result.best_learner);
    assert_eq!(retrained.config_rendered, result.best_config_rendered);

    // Same learner, configuration, seed, and data preparation: the
    // rebuilt model's predictions equal the original's bit-for-bit.
    let original = result.model.predict(&data).positive_scores().unwrap();
    let rebuilt = retrained.model.predict(&data).positive_scores().unwrap();
    assert_eq!(original.len(), rebuilt.len());
    for (i, (a, b)) in original.iter().zip(&rebuilt).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "prediction {i} diverged");
    }

    // Refusal on the wrong dataset: the fingerprint check catches it.
    let other = binary_dataset(600, 12);
    let err = retrain_from_log(&path, &other).unwrap_err();
    assert!(err.to_string().contains("fingerprint"), "got: {err}");
    let _ = std::fs::remove_file(&path);
}

/// A binary task hard enough that the initial low-cost configurations
/// are far from optimal: the label depends on feature interactions and
/// carries label noise, so the search needs many FLOW² steps to tune.
fn hard_binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<f64>> = (0..6)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let s = cols[0][i] * cols[1][i] * 3.0 + (cols[2][i] + cols[3][i]).sin() * 2.0
                - cols[4][i].powi(3)
                + rng.gen::<f64>() * 0.4;
            f64::from(s > 0.2)
        })
        .collect();
    Dataset::new("journal-hard", Task::Binary, cols, y).unwrap()
}

#[test]
fn warm_start_reaches_prior_best_in_fewer_trials() {
    // Sampling off so losses are measured on the same data in both runs
    // and "reached the prior best" is a like-for-like comparison.
    let data = hard_binary_dataset(800, 11);
    let path = scratch("warm");
    let cold = base()
        .time_budget(12.0)
        .max_trials(48)
        .sampling(false)
        .journal(&path)
        .fit(&data)
        .unwrap();
    let cold_best = cold.best_error;
    let cold_iters = cold
        .trials
        .iter()
        .find(|t| t.error.is_finite() && t.error <= cold_best)
        .map(|t| t.iter)
        .expect("cold run has a best trial");
    assert!(
        cold_iters > 1,
        "workload must not be solved at iter 1 for the comparison to mean anything"
    );

    let journal = Journal::read(&path).unwrap();
    let seeds = journal.best_configs();
    assert!(!seeds.is_empty());
    let warm = base()
        .time_budget(12.0)
        .max_trials(48)
        .sampling(false)
        .starting_points(seeds)
        .fit(&data)
        .unwrap();
    let warm_iters = warm
        .trials
        .iter()
        .find(|t| t.error.is_finite() && t.error <= cold_best)
        .map(|t| t.iter)
        .expect("warm-started run must reach the prior best loss");
    assert!(
        warm_iters < cold_iters,
        "warm start took {warm_iters} trials to reach {cold_best}, cold took {cold_iters}"
    );
    let _ = std::fs::remove_file(&path);
}
