//! Determinism contract of the flaml-exec runtime integration: under a
//! virtual clock, the committed trial trace is a pure function of
//! (dataset, settings, seed) — independent of worker count, speculative
//! execution, and fold-level parallelism.

use flaml_core::{
    default_virtual_cost, AutoMl, LearnerKind, LearnerSelection, ResampleChoice, TimeSource,
    TrialRecord,
};
use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    Dataset::new("det", Task::Binary, vec![x0, x1], y).unwrap()
}

fn base(workers: usize) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.0)
        .max_trials(24)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .seed(7)
        .workers(workers)
}

/// Serializes a trace so comparison is byte-exact (every field, including
/// the float bit patterns rendered by serde).
fn trace(trials: &[TrialRecord]) -> String {
    serde_json::to_string(trials).expect("trial records serialize")
}

#[test]
fn same_seed_virtual_runs_produce_identical_traces() {
    let data = binary_dataset(700, 1);
    let a = base(1).fit(&data).unwrap();
    let b = base(1).fit(&data).unwrap();
    assert_eq!(trace(&a.trials), trace(&b.trials));
    assert_eq!(a.best_error.to_bits(), b.best_error.to_bits());
    assert_eq!(a.best_config_rendered, b.best_config_rendered);
}

#[test]
fn eci_mode_trace_is_worker_count_invariant() {
    // ECI selection keeps trials sequential; the workers parallelize CV
    // folds inside each trial. Fold-order aggregation makes the fold sum
    // bit-exact, so the whole trace must match.
    let data = binary_dataset(600, 2);
    let seq = base(1)
        .resample(ResampleChoice::AlwaysCv)
        .fit(&data)
        .unwrap();
    for workers in [2, 4] {
        let par = base(workers)
            .resample(ResampleChoice::AlwaysCv)
            .fit(&data)
            .unwrap();
        assert_eq!(trace(&seq.trials), trace(&par.trials), "workers={workers}");
        assert_eq!(seq.best_error.to_bits(), par.best_error.to_bits());
    }
}

#[test]
fn speculative_round_robin_matches_sequential_trace() {
    // Round-robin enables speculation: workers pre-execute upcoming
    // trials, results commit in submission order. Under the virtual
    // clock a workers=1 run must be byte-identical to any worker count.
    // A generous virtual budget so many rounds run whatever configs the
    // search happens to propose; max_trials still caps the run.
    let data = binary_dataset(800, 3);
    let seq = base(1)
        .learner_selection(LearnerSelection::RoundRobin)
        .time_budget(6.0)
        .fit(&data)
        .unwrap();
    assert!(
        seq.trials.len() > 6,
        "need several rounds to exercise speculation, got {}",
        seq.trials.len()
    );
    for workers in [2, 4, 8] {
        let par = base(workers)
            .learner_selection(LearnerSelection::RoundRobin)
            .time_budget(6.0)
            .fit(&data)
            .unwrap();
        assert_eq!(trace(&seq.trials), trace(&par.trials), "workers={workers}");
        assert_eq!(seq.best_learner, par.best_learner);
        assert_eq!(seq.best_error.to_bits(), par.best_error.to_bits());
    }
}

#[test]
fn speculative_holdout_also_matches() {
    // Same contract when trials are holdout-evaluated (the model is
    // trained inside the trial rather than deferred).
    let data = binary_dataset(500, 4);
    let run = |workers: usize| {
        base(workers)
            .learner_selection(LearnerSelection::RoundRobin)
            .resample(ResampleChoice::AlwaysHoldout)
            .fit(&data)
            .unwrap()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(trace(&seq.trials), trace(&par.trials));
}
