//! Determinism contract of the flaml-exec runtime integration: under a
//! virtual clock, the committed trial trace is a pure function of
//! (dataset, settings, seed) — independent of worker count, speculative
//! execution, and fold-level parallelism.

use flaml_core::{
    default_virtual_cost, AutoMl, LearnerKind, LearnerSelection, ResampleChoice, TimeSource,
    TrialRecord,
};
use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    Dataset::new("det", Task::Binary, vec![x0, x1], y).unwrap()
}

fn base(workers: usize) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.0)
        .max_trials(24)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .seed(7)
        .workers(workers)
}

/// Serializes a trace so comparison is byte-exact (every field, including
/// the float bit patterns rendered by serde).
fn trace(trials: &[TrialRecord]) -> String {
    serde_json::to_string(trials).expect("trial records serialize")
}

#[test]
fn same_seed_virtual_runs_produce_identical_traces() {
    let data = binary_dataset(700, 1);
    let a = base(1).fit(&data).unwrap();
    let b = base(1).fit(&data).unwrap();
    assert_eq!(trace(&a.trials), trace(&b.trials));
    assert_eq!(a.best_error.to_bits(), b.best_error.to_bits());
    assert_eq!(a.best_config_rendered, b.best_config_rendered);
}

#[test]
fn eci_mode_trace_is_worker_count_invariant() {
    // ECI selection keeps trials sequential; the workers parallelize CV
    // folds inside each trial. Fold-order aggregation makes the fold sum
    // bit-exact, so the whole trace must match.
    let data = binary_dataset(600, 2);
    let seq = base(1)
        .resample(ResampleChoice::AlwaysCv)
        .fit(&data)
        .unwrap();
    for workers in [2, 4] {
        let par = base(workers)
            .resample(ResampleChoice::AlwaysCv)
            .fit(&data)
            .unwrap();
        assert_eq!(trace(&seq.trials), trace(&par.trials), "workers={workers}");
        assert_eq!(seq.best_error.to_bits(), par.best_error.to_bits());
    }
}

#[test]
fn speculative_round_robin_matches_sequential_trace() {
    // Round-robin enables speculation: workers pre-execute upcoming
    // trials, results commit in submission order. Under the virtual
    // clock a workers=1 run must be byte-identical to any worker count.
    // A generous virtual budget so many rounds run whatever configs the
    // search happens to propose; max_trials still caps the run.
    let data = binary_dataset(800, 3);
    let seq = base(1)
        .learner_selection(LearnerSelection::RoundRobin)
        .time_budget(6.0)
        .fit(&data)
        .unwrap();
    assert!(
        seq.trials.len() > 6,
        "need several rounds to exercise speculation, got {}",
        seq.trials.len()
    );
    for workers in [2, 4, 8] {
        let par = base(workers)
            .learner_selection(LearnerSelection::RoundRobin)
            .time_budget(6.0)
            .fit(&data)
            .unwrap();
        assert_eq!(trace(&seq.trials), trace(&par.trials), "workers={workers}");
        assert_eq!(seq.best_learner, par.best_learner);
        assert_eq!(seq.best_error.to_bits(), par.best_error.to_bits());
    }
}

/// A scratch journal path unique to one (test, workers, k) combination.
fn journal_path(tag: &str, workers: usize, k: usize) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "flaml_determinism_{tag}_w{workers}_k{k}_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_trace() {
    // The crash-recovery contract: journal a run, kill it after k trials,
    // resume from the journal, and the continued trace must be
    // byte-identical to a run that was never interrupted — for an early,
    // a middle, and a last-moment kill, sequential and parallel.
    let data = binary_dataset(700, 5);
    for workers in [1usize, 4] {
        let full = base(workers).fit(&data).unwrap();
        let total = full.trials.len();
        assert!(total >= 4, "need a few trials to kill between, got {total}");
        for k in [1, total / 2, total - 1] {
            let path = journal_path("resume", workers, k);
            // "Kill at trial k": cap the journaled run at k trials. The
            // journal then holds exactly the records a SIGKILL at that
            // point would have committed (every record is fsynced).
            let partial = base(workers)
                .max_trials(k)
                .journal(&path)
                .fit(&data)
                .unwrap();
            assert_eq!(partial.trials.len(), k, "workers={workers} k={k}");
            let resumed = base(workers).resume_from(&path).fit(&data).unwrap();
            assert_eq!(
                trace(&full.trials),
                trace(&resumed.trials),
                "workers={workers} k={k}"
            );
            assert_eq!(full.best_error.to_bits(), resumed.best_error.to_bits());
            assert_eq!(full.best_config_rendered, resumed.best_config_rendered);
            // The resumed process kept journaling: the file must now
            // describe the full run and support a second resume that
            // replays everything and runs nothing.
            let journal = flaml_core::Journal::read(&path).unwrap();
            assert_eq!(journal.trials.len(), total, "workers={workers} k={k}");
            let replayed_only = base(workers).resume_from(&path).fit(&data).unwrap();
            assert_eq!(trace(&full.trials), trace(&replayed_only.trials));
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn resume_refuses_a_journal_from_different_settings() {
    let data = binary_dataset(500, 6);
    let path = journal_path("mismatch", 1, 0);
    base(1).max_trials(3).journal(&path).fit(&data).unwrap();
    // Different seed: the replayed proposals would diverge immediately,
    // so resume must refuse up front on the header.
    let err = base(1).seed(8).resume_from(&path).fit(&data).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("seed"), "unexpected error: {msg}");
    // Different dataset content: caught by the fingerprint.
    let other = binary_dataset(500, 99);
    let err = base(1).resume_from(&path).fit(&other).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fingerprint"), "unexpected error: {msg}");
    let _ = std::fs::remove_file(&path);
}

/// Builds the `base` search with one tree-cache variant applied.
fn with_tree_cache(workers: usize, variant: &str) -> AutoMl {
    match variant {
        "on" => base(workers).tree_cache(true),
        "off" => base(workers).tree_cache(false),
        // A one-byte budget: every store-back immediately evicts, so the
        // cache is permanently cold while its code path still runs.
        "evicting" => base(workers).tree_cache_bytes(1),
        other => unreachable!("unknown tree cache variant {other}"),
    }
}

#[test]
fn tree_cache_on_off_and_evicting_traces_are_identical() {
    // The cross-trial tree cache must be observationally pure: a warm
    // continuation is bit-identical to a cold fit, so the committed trial
    // trace — configs, losses, costs, learner choices — cannot depend on
    // whether the cache is on (the default), off, or thrashing under a
    // one-byte budget. The roster includes LightGbm, whose eligible
    // configurations drive real lookups and store-backs, at both worker
    // counts.
    let data = binary_dataset(700, 12);
    let reference = base(1).fit(&data).unwrap();
    assert!(reference.trials.len() > 5, "sweep ran too few trials");
    let want = trace(&reference.trials);
    for workers in [1, 4] {
        for variant in ["on", "off", "evicting"] {
            let run = with_tree_cache(workers, variant).fit(&data).unwrap();
            assert_eq!(
                want,
                trace(&run.trials),
                "workers={workers}, tree cache {variant}: trace diverged"
            );
            assert_eq!(
                reference.best_error.to_bits(),
                run.best_error.to_bits(),
                "workers={workers}, tree cache {variant}: best error diverged"
            );
        }
    }
}

#[test]
fn kill_and_resume_with_tree_cache_variants_matches() {
    // Crash recovery must not depend on tree-cache warmth: the
    // uninterrupted run carries whatever the cache accumulated, while a
    // resumed process replays the journal with a cold cache and rebuilds
    // warmth only from the trials it actually re-executes. Traces must
    // match anyway, and the journals must agree byte-for-byte under
    // [`flaml_core::Journal::canonical_bytes`], which zeroes exactly the
    // process-lifetime fields (wall time and cache counters).
    let data = binary_dataset(700, 13);
    for variant in ["on", "evicting", "off"] {
        let full = with_tree_cache(1, variant).fit(&data).unwrap();
        let total = full.trials.len();
        assert!(total >= 4, "tree cache {variant}: too few trials ({total})");
        let k = total / 2;
        let path = journal_path("treecache_resume", 1, k);
        with_tree_cache(1, variant)
            .max_trials(k)
            .journal(&path)
            .fit(&data)
            .unwrap();
        let resumed = with_tree_cache(1, variant)
            .resume_from(&path)
            .fit(&data)
            .unwrap();
        assert_eq!(
            trace(&full.trials),
            trace(&resumed.trials),
            "tree cache {variant}: resumed trace diverged"
        );
        assert_eq!(full.best_error.to_bits(), resumed.best_error.to_bits());
        // The resumed journal must be canonically identical to one from a
        // run that was never interrupted.
        let fresh = journal_path("treecache_fresh", 1, k);
        with_tree_cache(1, variant)
            .journal(&fresh)
            .fit(&data)
            .unwrap();
        // Strip the header line first: the killed run was capped at k
        // trials, so its header records a different `max_trials` — the
        // trial records themselves are what must agree.
        let canonical_trials = |p: &std::path::Path| {
            let journal = flaml_core::Journal::read(p).unwrap();
            let bytes = journal.canonical_bytes();
            bytes
                .split_once('\n')
                .map(|(_, rest)| rest.to_string())
                .unwrap_or_default()
        };
        assert_eq!(
            canonical_trials(&path),
            canonical_trials(&fresh),
            "tree cache {variant}: canonical journal bytes diverged"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&fresh);
    }
}

#[test]
fn speculative_holdout_also_matches() {
    // Same contract when trials are holdout-evaluated (the model is
    // trained inside the trial rather than deferred).
    let data = binary_dataset(500, 4);
    let run = |workers: usize| {
        base(workers)
            .learner_selection(LearnerSelection::RoundRobin)
            .resample(ResampleChoice::AlwaysHoldout)
            .fit(&data)
            .unwrap()
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(trace(&seq.trials), trace(&par.trials));
}
