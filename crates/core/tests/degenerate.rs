//! Degenerate-input contract: `AutoMl::run` must never panic on a
//! pathological dataset. Unsalvageable shapes (single-class targets, a
//! single row, nothing but constant features) return a typed
//! [`AutoMlError`]; salvageable ones (constant or all-NaN columns next to
//! informative ones) are cleaned up and searched normally, with a
//! `Sanitized` telemetry event recording the dropped columns.
//!
//! Written as deterministic sweeps rather than randomized property tests
//! so every shape runs on every CI invocation.

use flaml_core::{
    default_virtual_cost, event_channel, AutoMl, AutoMlError, LearnerKind, Telemetry, TimeSource,
};
use flaml_data::{Dataset, Task};

fn quick(seed: u64) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(50)
        .time_budget(0.5)
        .max_trials(6)
        .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
        .seed(seed)
}

/// A learnable column: class-correlated with a deterministic wiggle.
fn informative(n: usize) -> (Vec<f64>, Vec<f64>) {
    let y: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
    let x: Vec<f64> = (0..n)
        .map(|i| y[i] * 2.0 + ((i * 7) % 13) as f64 * 0.05)
        .collect();
    (x, y)
}

#[test]
fn single_class_labels_return_degenerate_target() {
    let n = 80;
    let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
    for class in [0.0, 1.0] {
        let d = Dataset::new("one-class", Task::Binary, vec![x.clone()], vec![class; n]).unwrap();
        match quick(0).fit(&d) {
            Err(AutoMlError::DegenerateTarget { classes_present }) => {
                assert_eq!(classes_present, 1)
            }
            other => panic!("expected DegenerateTarget, got {other:?}"),
        }
    }
}

#[test]
fn single_class_multiclass_labels_return_degenerate_target() {
    let n = 60;
    let x: Vec<f64> = (0..n).map(|i| (i % 9) as f64).collect();
    let d = Dataset::new("mc", Task::MultiClass(4), vec![x], vec![2.0; n]).unwrap();
    match quick(1).fit(&d) {
        Err(AutoMlError::DegenerateTarget { classes_present }) => assert_eq!(classes_present, 1),
        other => panic!("expected DegenerateTarget, got {other:?}"),
    }
}

#[test]
fn single_row_returns_too_few_rows() {
    let d = Dataset::new("tiny", Task::Regression, vec![vec![1.0]], vec![3.0]).unwrap();
    match quick(2).fit(&d) {
        Err(AutoMlError::TooFewRows { rows, needed }) => {
            assert_eq!(rows, 1);
            assert_eq!(needed, 2);
        }
        other => panic!("expected TooFewRows, got {other:?}"),
    }
}

#[test]
fn constant_and_nan_columns_are_dropped_and_search_proceeds() {
    let n = 200;
    let (x, y) = informative(n);
    for junk in [vec![5.0; n], vec![f64::NAN; n]] {
        let d = Dataset::new(
            "junky",
            Task::Binary,
            vec![junk.clone(), x.clone()],
            y.clone(),
        )
        .unwrap();
        let (sink, rx) = event_channel();
        let result = quick(3)
            .event_sink(sink)
            .fit(&d)
            .expect("informative column remains; the search must run");
        assert!(result.best_error.is_finite());
        let mut telemetry = Telemetry::default();
        for ev in rx.try_iter() {
            telemetry.record(&ev);
        }
        assert_eq!(telemetry.sanitized, 1, "one cleanup event per run");
    }
}

#[test]
fn all_degenerate_features_return_no_usable_features() {
    let n = 100;
    let y: Vec<f64> = (0..n).map(|i| f64::from(i % 2 == 0)).collect();
    let d = Dataset::new(
        "hopeless",
        Task::Binary,
        vec![vec![1.0; n], vec![f64::NAN; n]],
        y,
    )
    .unwrap();
    match quick(4).fit(&d) {
        Err(AutoMlError::NoUsableFeatures) => {}
        other => panic!("expected NoUsableFeatures, got {other:?}"),
    }
}

#[test]
fn degenerate_shape_sweep_never_panics() {
    // Every pathological shape either fits or returns a typed error —
    // a panic anywhere in the stack fails this test.
    let n = 40;
    let (x, y) = informative(n);
    let shapes: Vec<Dataset> = vec![
        // Two rows only.
        Dataset::new(
            "two-rows",
            Task::Binary,
            vec![vec![0.0, 1.0]],
            vec![0.0, 1.0],
        )
        .unwrap(),
        // Constant column beside a near-constant one.
        Dataset::new(
            "near-constant",
            Task::Binary,
            vec![vec![2.0; n], {
                let mut c = vec![0.5; n];
                c[0] = 0.6;
                c
            }],
            y.clone(),
        )
        .unwrap(),
        // NaN-speckled informative column (not fully degenerate).
        Dataset::new(
            "nan-speckled",
            Task::Binary,
            vec![x
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % 5 == 0 { f64::NAN } else { v })
                .collect()],
            y.clone(),
        )
        .unwrap(),
        // Regression with a constant target (valid, if unhelpful).
        Dataset::new(
            "flat-target",
            Task::Regression,
            vec![x.clone()],
            vec![1.0; n],
        )
        .unwrap(),
    ];
    for (i, d) in shapes.iter().enumerate() {
        match quick(5 + i as u64).fit(d) {
            Ok(result) => assert!(!result.best_error.is_nan(), "{}", d.name()),
            Err(e) => {
                // Typed failure is acceptable; a panic is not.
                let _ = format!("{e}");
            }
        }
    }
}
