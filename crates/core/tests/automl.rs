//! Integration tests of the AutoML controller: budget behaviour, the
//! sample-size schedule, ECI dynamics, ablation switches and final-model
//! quality.

use flaml_core::{
    default_virtual_cost, AutoMl, AutoMlError, LearnerKind, LearnerSelection, ResampleChoice,
    TimeSource, TrialMode,
};
use flaml_data::{Dataset, DatasetView, Task};
use flaml_metrics::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let signal = x0[i] * 2.0 + (x1[i] - 0.5).powi(2) * 4.0 - x2[i];
            f64::from(signal + 0.2 * rng.gen::<f64>() > 1.0)
        })
        .collect();
    Dataset::new("itest-binary", Task::Binary, vec![x0, x1, x2], y).unwrap()
}

fn regression_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| (x0[i] * 6.0).sin() * 2.0 + x1[i] * 3.0 + 0.1 * rng.gen::<f64>())
        .collect();
    Dataset::new("itest-reg", Task::Regression, vec![x0, x1], y).unwrap()
}

fn virtual_automl() -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
}

#[test]
fn finds_a_reasonable_binary_model() {
    let data = binary_dataset(1200, 0);
    let result = virtual_automl()
        .time_budget(3.0)
        .max_trials(120)
        .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
        .seed(1)
        .fit(&data)
        .unwrap();
    assert!(result.best_error < 0.2, "auc regret {}", result.best_error);
    let pred = result.model.predict(&data);
    let train_loss = Metric::RocAuc.loss(&pred, data.target()).unwrap();
    assert!(train_loss < 0.2, "train auc regret {train_loss}");
    assert!(!result.trials.is_empty());
}

#[test]
fn regression_task_uses_r2_by_default() {
    let data = regression_dataset(800, 1);
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(80)
        .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
        .seed(2)
        .fit(&data)
        .unwrap();
    assert_eq!(result.metric, Metric::R2);
    assert!(result.best_error < 0.5, "1 - r2 = {}", result.best_error);
}

#[test]
fn first_trial_is_the_fastest_learner_at_init_sample() {
    let data = binary_dataset(2000, 2);
    let result = virtual_automl()
        .time_budget(1.0)
        .max_trials(10)
        .seed(3)
        .fit(&data)
        .unwrap();
    let first = &result.trials[0];
    assert_eq!(first.learner, "lightgbm");
    assert_eq!(first.sample_size, 100);
    assert_eq!(first.mode, TrialMode::Search);
    // The init config is the low-cost one: 4 trees, 4 leaves.
    assert!(first.config.contains("tree_num=4"), "{}", first.config);
    assert!(first.config.contains("leaf_num=4"), "{}", first.config);
}

#[test]
fn sample_size_grows_by_doubling() {
    let data = binary_dataset(3000, 3);
    let result = virtual_automl()
        .time_budget(5.0)
        .max_trials(100)
        .estimators([LearnerKind::LightGbm])
        .seed(4)
        .fit(&data)
        .unwrap();
    let sizes: Vec<usize> = result
        .trials
        .iter()
        .filter(|t| t.mode == TrialMode::SampleUp)
        .map(|t| t.sample_size)
        .collect();
    assert!(!sizes.is_empty(), "sampling schedule never grew the sample");
    for w in sizes.windows(2) {
        assert!(
            w[1] >= w[0],
            "sample sizes must be non-decreasing: {sizes:?}"
        );
    }
    // Each SampleUp doubles (until the full size caps it).
    let search_sizes: Vec<usize> = result.trials.iter().map(|t| t.sample_size).collect();
    assert!(search_sizes.iter().all(|&s| s <= 3000));
}

#[test]
fn budget_is_respected_by_virtual_clock() {
    let data = binary_dataset(1500, 4);
    let result = virtual_automl()
        .time_budget(1.5)
        .max_trials(60)
        .seed(5)
        .fit(&data)
        .unwrap();
    // The final trial may start just before the budget ends; everything
    // before it must be within budget.
    for t in &result.trials[..result.trials.len() - 1] {
        assert!(
            t.total_time - t.cost <= 1.5 + 1e-9,
            "trial {} started past the budget",
            t.iter
        );
    }
}

#[test]
fn eci_snapshots_cover_all_learners() {
    let data = binary_dataset(600, 5);
    let estimators = [LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr];
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(60)
        .estimators(estimators)
        .seed(6)
        .fit(&data)
        .unwrap();
    for t in &result.trials {
        assert_eq!(t.eci_snapshot.len(), 3, "trial {}", t.iter);
        for (_, eci) in &t.eci_snapshot {
            assert!(*eci > 0.0, "ECI must stay positive");
        }
    }
}

#[test]
fn round_robin_cycles_learners() {
    let data = binary_dataset(600, 6);
    let estimators = [LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr];
    let result = virtual_automl()
        .time_budget(10.0)
        .estimators(estimators)
        .learner_selection(LearnerSelection::RoundRobin)
        .max_trials(9)
        .seed(7)
        .fit(&data)
        .unwrap();
    let learners: Vec<String> = result.trials.iter().map(|t| t.learner.clone()).collect();
    // Trial 0 is the fastest learner; afterwards iter % 3 cycles.
    for (i, l) in learners.iter().enumerate().skip(1) {
        assert_eq!(l, estimators[i % 3].name(), "trial {i}");
    }
    assert!(result.trials.iter().all(|t| t.eci_snapshot.is_empty()));
}

#[test]
fn fulldata_ablation_disables_sampling() {
    let data = binary_dataset(1200, 7);
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(40)
        .estimators([LearnerKind::LightGbm])
        .sampling(false)
        .seed(8)
        .fit(&data)
        .unwrap();
    assert!(result
        .trials
        .iter()
        .all(|t| t.sample_size == 1200 && t.mode == TrialMode::Search));
}

#[test]
fn resample_override_forces_cv() {
    let data = binary_dataset(400, 8);
    let result = virtual_automl()
        .time_budget(1.0)
        .max_trials(20)
        .estimators([LearnerKind::LightGbm])
        .resample(ResampleChoice::AlwaysCv)
        .seed(9)
        .fit(&data)
        .unwrap();
    assert_eq!(
        result.strategy,
        flaml_core::ResampleStrategy::Cv { folds: 5 }
    );
}

#[test]
fn empty_estimator_list_is_an_error() {
    let data = binary_dataset(100, 9);
    let err = AutoMl::new().estimators(Vec::new()).fit(&data);
    assert!(matches!(err, Err(AutoMlError::NoEstimators)));
}

#[test]
fn deterministic_under_virtual_clock() {
    let data = binary_dataset(800, 10);
    let run = |seed| {
        let r = virtual_automl()
            .time_budget(1.0)
            .max_trials(40)
            .estimators([LearnerKind::LightGbm, LearnerKind::Lr])
            .seed(seed)
            .fit(&data)
            .unwrap();
        r.trials
            .iter()
            .map(|t| (t.learner.clone(), t.config.clone(), t.sample_size))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn max_trials_caps_the_loop() {
    let data = binary_dataset(500, 11);
    let result = virtual_automl()
        .time_budget(1e9)
        .max_trials(7)
        .seed(13)
        .fit(&data)
        .unwrap();
    assert_eq!(result.trials.len(), 7);
}

#[test]
fn trial_costs_accumulate_into_total_time() {
    let data = binary_dataset(700, 12);
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(60)
        .seed(14)
        .fit(&data)
        .unwrap();
    let mut acc = 0.0;
    for t in &result.trials {
        acc += t.cost;
        assert!(
            (t.total_time - acc).abs() < 1e-9,
            "total_time must be the cost prefix sum"
        );
    }
}

#[test]
fn best_error_is_monotone_over_trials() {
    let data = binary_dataset(900, 13);
    let result = virtual_automl()
        .time_budget(3.0)
        .max_trials(80)
        .seed(15)
        .fit(&data)
        .unwrap();
    let mut last = f64::INFINITY;
    for t in &result.trials {
        assert!(t.best_error_so_far <= last + 1e-12);
        last = t.best_error_so_far;
    }
    assert_eq!(last, result.best_error);
}

#[test]
fn multiclass_runs_end_to_end() {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(21);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            if x0[i] > 0.6 {
                2.0
            } else if x1[i] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let data = Dataset::new("mc", Task::MultiClass(3), vec![x0, x1], y).unwrap();
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(60)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf])
        .seed(16)
        .fit(&data)
        .unwrap();
    assert_eq!(result.metric, Metric::LogLoss);
    let pred = result.model.predict(&data);
    let acc_loss = Metric::Accuracy.loss(&pred, data.target()).unwrap();
    assert!(acc_loss < 0.15, "train error {acc_loss}");
}

#[test]
fn custom_learner_participates_in_the_search() {
    use flaml_core::CustomLearner;
    use flaml_learners::{FitError, FittedModel, Linear, LinearParams};
    use flaml_search::{Config, Domain, ParamDef, SearchSpace};
    use std::sync::Arc;
    use std::time::Duration;

    #[derive(Debug)]
    struct TinyLr;

    impl CustomLearner for TinyLr {
        fn name(&self) -> &str {
            "tiny_lr"
        }
        fn space(&self, _n: usize) -> SearchSpace {
            SearchSpace::new(vec![ParamDef::new(
                "c",
                Domain::log_float(0.01, 100.0),
                1.0,
            )])
            .expect("valid")
        }
        fn cost_constant(&self) -> f64 {
            1.5
        }
        fn fit(
            &self,
            data: &DatasetView,
            config: &Config,
            space: &SearchSpace,
            seed: u64,
            budget: Option<Duration>,
        ) -> Result<FittedModel, FitError> {
            Linear::fit_bounded(
                data,
                &LinearParams {
                    c: config.get(space, "c"),
                    max_iter: 10,
                },
                seed,
                budget,
            )
            .map(FittedModel::from)
        }
    }

    let data = binary_dataset(600, 40);
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(30)
        .estimators([LearnerKind::LightGbm])
        .add_learner(Arc::new(TinyLr))
        .seed(41)
        .fit(&data)
        .unwrap();
    let custom_trials = result
        .trials
        .iter()
        .filter(|t| t.learner == "tiny_lr")
        .count();
    assert!(custom_trials > 0, "custom learner never tried");
    // ECI snapshots must include the custom learner.
    assert!(result
        .trials
        .iter()
        .all(|t| t.eci_snapshot.iter().any(|(name, _)| name == "tiny_lr")));
}

#[test]
fn ensemble_option_returns_a_stacked_model() {
    let data = binary_dataset(800, 30);
    let result = virtual_automl()
        .time_budget(2.0)
        .max_trials(40)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .ensemble(true)
        .seed(30)
        .fit(&data)
        .unwrap();
    assert!(
        matches!(result.model, flaml_learners::FittedModel::Stacked(_)),
        "ensemble(true) should produce a stacked model when members exist"
    );
    let pred = result.model.predict(&data);
    let loss = Metric::RocAuc.loss(&pred, data.target()).unwrap();
    assert!(loss < 0.25, "ensemble train auc regret {loss}");
}

#[test]
fn wall_clock_budget_is_roughly_respected() {
    let data = binary_dataset(2000, 17);
    let t0 = std::time::Instant::now();
    let result = AutoMl::new()
        .time_budget(1.0)
        .sample_size_init(200)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf])
        .seed(18)
        .fit(&data)
        .unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(
        elapsed < 4.0,
        "1s budget took {elapsed}s (deadline guard failed)"
    );
    assert!(!result.trials.is_empty());
}
