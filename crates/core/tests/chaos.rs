//! Chaos-mode contract: with a seeded [`FaultPlan`] injecting faults into
//! a meaningful fraction of trials, the search must still complete with a
//! viable model, the telemetry must account for every retry and
//! quarantine, and the virtual-clock trace must stay byte-identical at
//! any worker count (faults are pure functions of `(seed, trial,
//! attempt)`, never of scheduling).

use flaml_core::{
    default_virtual_cost, event_channel, AutoMl, FaultPlan, LearnerKind, LearnerSelection,
    Telemetry, TimeSource, TrialRecord, TrialStatus,
};
use flaml_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn binary_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    Dataset::new("chaos", Task::Binary, vec![x0, x1], y).unwrap()
}

/// 24% of attempts faulted: 8% panics, 8% slowdowns, 8% poisoned losses.
fn plan() -> FaultPlan {
    FaultPlan::uniform(99, 0.24)
}

fn base(workers: usize) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.5)
        .max_trials(30)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .seed(11)
        .workers(workers)
        .fault_plan(plan())
}

fn trace(trials: &[TrialRecord]) -> String {
    serde_json::to_string(trials).expect("trial records serialize")
}

#[test]
fn chaos_run_completes_with_viable_model_and_matching_telemetry() {
    let data = binary_dataset(700, 5);
    let (sink, rx) = event_channel();
    let result = base(1)
        .event_sink(sink)
        .fit(&data)
        .expect("chaos run still produces a model");
    assert!(result.best_error.is_finite(), "a viable incumbent survives");
    assert!(!result.trials.is_empty());

    // The injected faults must actually have bitten: either a trial kept
    // a non-Ok status or a retry repaired it (the common case — transient
    // faults re-roll and clear on the second attempt).
    let n_failed = result
        .trials
        .iter()
        .filter(|t| t.status != TrialStatus::Ok)
        .count();
    assert!(
        n_failed > 0 || result.n_retries > 0,
        "no faults landed — plan or seed regressed"
    );

    // No NaN ever escapes to a record; failures carry the sentinel.
    for t in &result.trials {
        assert!(!t.error.is_nan(), "trial {} leaked a NaN error", t.iter);
    }

    // Telemetry events agree with the result's own accounting.
    let mut telemetry = Telemetry::default();
    for ev in rx.try_iter() {
        telemetry.record(&ev);
    }
    let record_retries: usize = result.trials.iter().map(|t| t.n_retries).sum();
    assert_eq!(result.n_retries, record_retries);
    assert_eq!(telemetry.retried, record_retries);
    assert_eq!(telemetry.quarantined, result.n_quarantined);
    let record_panics = result.trials.iter().filter(|t| t.panicked).count();
    assert_eq!(telemetry.panicked, record_panics);
}

#[test]
fn chaos_trace_is_worker_count_invariant() {
    let data = binary_dataset(700, 5);
    let seq = base(1).fit(&data).expect("sequential chaos run");
    for workers in [2, 4] {
        let par = base(workers).fit(&data).expect("parallel chaos run");
        assert_eq!(trace(&seq.trials), trace(&par.trials), "workers={workers}");
        assert_eq!(seq.best_error.to_bits(), par.best_error.to_bits());
        assert_eq!(seq.n_retries, par.n_retries);
        assert_eq!(seq.n_quarantined, par.n_quarantined);
    }
}

#[test]
fn speculative_chaos_trace_is_worker_count_invariant() {
    // Round-robin enables speculative pre-execution; injected faults must
    // commit identically because they are keyed by trial number, not by
    // which worker ran the attempt.
    let data = binary_dataset(700, 6);
    let seq = base(1)
        .learner_selection(LearnerSelection::RoundRobin)
        .fit(&data)
        .expect("sequential chaos run");
    let par = base(4)
        .learner_selection(LearnerSelection::RoundRobin)
        .fit(&data)
        .expect("speculative chaos run");
    assert_eq!(trace(&seq.trials), trace(&par.trials));
    assert_eq!(seq.n_retries, par.n_retries);
}

#[test]
fn retries_clear_transient_faults() {
    // A panic-only plan at a rate high enough to hit early trials: with
    // retries enabled, some faulted trial must succeed on a later attempt
    // (the plan re-rolls per attempt).
    let data = binary_dataset(500, 7);
    let result = AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.0)
        .max_trials(20)
        .estimators([LearnerKind::LightGbm])
        .seed(3)
        .fault_plan(FaultPlan::new(13).panics(0.5))
        .max_retries(3)
        .fit(&data)
        .expect("retries keep the run alive");
    assert!(
        result.n_retries > 0,
        "a 50% panic rate must trigger retries"
    );
    let recovered = result
        .trials
        .iter()
        .any(|t| t.n_retries > 0 && t.status == TrialStatus::Ok);
    assert!(recovered, "some trial should recover via retry");
}

#[test]
fn quarantine_fires_and_lifts_under_eci_selection() {
    // Poison every attempt of one learner family by running a plan that
    // poisons heavily; with quarantine_after small, quarantines happen.
    let data = binary_dataset(500, 8);
    let result = AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.5)
        .max_trials(30)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf])
        .seed(4)
        .fault_plan(FaultPlan::new(21).poisons(0.6))
        .max_retries(0)
        .quarantine_after(2)
        .quarantine_probe_every(4)
        .fit(&data)
        .expect("quarantine must not kill the run");
    assert!(
        result.n_quarantined > 0,
        "a 60% poison rate must quarantine"
    );
    assert!(result.best_error.is_finite());
}
