//! Equivalence sweep for the zero-copy data plane: fitting against an
//! Arc-backed [`DatasetView`] must be bit-identical to fitting against a
//! materialized copy, pre-binned fits must match unprepared fits, and the
//! AutoML trial trace must not change whether the prepared-data cache is
//! on, off, or evicting under a tiny byte budget — at any worker count.
//! The cross-trial tree cache obeys the same discipline: warm boosting
//! continuations are bit-identical to cold fits at the trial-execution
//! layer, and its telemetry counters move only when the cache is on.

use flaml_core::{
    default_virtual_cost, event_channel, fit_learner, fit_learner_prepared, run_trial_prepared,
    AutoMl, DataPlane, Estimator, ExecPool, LearnerKind, ResampleChoice, ResampleStrategy,
    Telemetry, TimeSource, TreeCache, TreeKey, TrialBoost, TrialRecord,
};
use flaml_data::{Dataset, DatasetView, Task};
use flaml_learners::{PreparedBins, PreparedSort};
use flaml_metrics::Pred;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(task: Task, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let signal = x0[i] * 2.0 + (x1[i] - 0.5).powi(2) * 4.0 - x2[i] + 0.1 * rng.gen::<f64>();
            match task {
                Task::Binary => f64::from(signal > 1.0),
                Task::MultiClass(k) => {
                    let k = k as f64;
                    (signal.clamp(0.0, 2.999) / 3.0 * k).floor().min(k - 1.0)
                }
                Task::Regression => signal,
            }
        })
        .collect();
    Dataset::new("dp-sweep", task, vec![x0, x1, x2], y).unwrap()
}

/// The bit patterns of a prediction, so equality is exact — not within
/// epsilon. Zero-copy views must not perturb accumulation order.
fn bits(p: &Pred) -> Vec<u64> {
    match p {
        Pred::Probs { p, .. } => p.iter().map(|v| v.to_bits()).collect(),
        Pred::Values(v) => v.iter().map(|v| v.to_bits()).collect(),
    }
}

fn trace(trials: &[TrialRecord]) -> String {
    serde_json::to_string(trials).expect("trial records serialize")
}

/// Every learner × every task: a model fit through a prefix view and one
/// fit through a scattered-index view must equal models fit on owned
/// materialized copies of the same rows, prediction-for-prediction.
#[test]
fn view_fits_match_materialized_copy_fits() {
    for task in [Task::Binary, Task::MultiClass(3), Task::Regression] {
        let data = dataset(task, 260, 11);
        let shuffled = data.shuffled_view(5);
        let prefix = shuffled.prefix(180);
        let scattered: Vec<usize> = (0..200).map(|i| (i * 7) % 260).collect();
        let select = shuffled.select(&scattered);
        let eval = data.view();
        for kind in LearnerKind::ALL {
            let space = kind.space(prefix.n_rows());
            let config = space.init_config();
            for (label, view) in [("prefix", &prefix), ("select", &select)] {
                let from_view = fit_learner(kind, view.clone(), &config, &space, 9, None)
                    .unwrap_or_else(|e| panic!("{kind}/{task:?}/{label} view fit: {e:?}"));
                let copy = view.materialize();
                let from_copy = fit_learner(kind, &copy, &config, &space, 9, None)
                    .unwrap_or_else(|e| panic!("{kind}/{task:?}/{label} copy fit: {e:?}"));
                assert_eq!(
                    bits(&from_view.predict(eval.clone())),
                    bits(&from_copy.predict(eval.clone())),
                    "{kind}/{task:?}/{label}: view-trained and copy-trained models disagree"
                );
                // Predicting through a view must equal predicting on an
                // owned copy of the same rows too.
                assert_eq!(
                    bits(&from_view.predict(view.clone())),
                    bits(&from_view.predict(&copy)),
                    "{kind}/{task:?}/{label}: view and copy predictions disagree"
                );
            }
        }
    }
}

/// GBDT fits with externally prepared bins must be bit-identical to the
/// same fit re-binning internally, at the learner's own max_bin.
#[test]
fn prepared_bins_fits_match_unprepared_fits() {
    for task in [Task::Binary, Task::MultiClass(3), Task::Regression] {
        let data = dataset(task, 240, 13);
        let view = data.shuffled_view(3).prefix(200);
        for kind in [
            LearnerKind::LightGbm,
            LearnerKind::XgBoost,
            LearnerKind::CatBoost,
        ] {
            let est = Estimator::from(kind);
            let space = est.space(view.n_rows());
            let config = space.init_config();
            let max_bin = est
                .max_bin(&config, &space)
                .expect("gbdt learners have a max_bin");
            let sort = PreparedSort::compute(view.clone());
            let bins_mat = PreparedBins::prepare(&sort, view.clone(), max_bin);
            let prepared =
                fit_learner_prepared(kind, &view, &config, &space, 9, None, Some(&bins_mat))
                    .unwrap_or_else(|e| panic!("{kind}/{task:?} prepared fit: {e:?}"));
            let fresh = fit_learner_prepared(kind, &view, &config, &space, 9, None, None)
                .unwrap_or_else(|e| panic!("{kind}/{task:?} unprepared fit: {e:?}"));
            assert_eq!(
                bits(&prepared.predict(data.view())),
                bits(&fresh.predict(data.view())),
                "{kind}/{task:?}: prepared-bins fit diverges from internal binning"
            );
        }
    }
}

fn sweep_automl(workers: usize) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.5)
        .max_trials(20)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .resample(ResampleChoice::AlwaysCv)
        .seed(17)
        .workers(workers)
}

/// The trial trace is a pure function of (dataset, settings, seed): the
/// prepared-data cache — on, off, or evicting under a one-byte budget —
/// must never change it, sequentially or with parallel workers.
#[test]
fn cache_on_off_and_evicting_traces_are_identical() {
    let data = dataset(Task::Binary, 600, 19);
    let reference = sweep_automl(1).prepared_cache(true).fit(&data).unwrap();
    assert!(reference.trials.len() > 5, "sweep ran too few trials");
    let want = trace(&reference.trials);
    for workers in [1, 4] {
        for (label, automl) in [
            ("cache on", sweep_automl(workers).prepared_cache(true)),
            ("cache off", sweep_automl(workers).prepared_cache(false)),
            (
                "evicting",
                sweep_automl(workers)
                    .prepared_cache(true)
                    .prepared_cache_bytes(1),
            ),
        ] {
            let run = automl.fit(&data).unwrap();
            assert_eq!(
                want,
                trace(&run.trials),
                "workers={workers}, {label}: trace diverged"
            );
            assert_eq!(
                reference.best_error.to_bits(),
                run.best_error.to_bits(),
                "workers={workers}, {label}: best error diverged"
            );
        }
    }
}

fn telemetry_of(automl: AutoMl, data: &Dataset) -> Telemetry {
    let (sink, rx) = event_channel();
    automl.event_sink(sink).fit(data).unwrap();
    Telemetry::new().drain(&rx)
}

/// With the cache on, repeated trials at one sample size hit the prepared
/// cache and skip dataset copies; with it off every trial misses and the
/// copies actually happen, so no savings may be claimed.
#[test]
fn telemetry_counters_reflect_cache_state() {
    let data = dataset(Task::Binary, 600, 23);
    let on = telemetry_of(sweep_automl(1).prepared_cache(true), &data);
    assert!(on.prepared_hits > 0, "warm trials should hit the cache");
    assert!(on.prepared_misses > 0, "first preparation must miss");
    assert!(
        on.bytes_copied_saved > 0,
        "cache hits should avoid dataset copies"
    );
    let off = telemetry_of(sweep_automl(1).prepared_cache(false), &data);
    assert_eq!(off.prepared_hits, 0, "disabled plane cannot hit");
    assert!(off.prepared_misses > 0, "every disabled trial misses");
    assert_eq!(
        off.bytes_copied_saved, 0,
        "disabled plane materializes real copies, saving nothing"
    );
    // Note: hit/miss units differ by state — enabled counts per cache
    // entry (folds, per-fold sorts, per-fold bins), disabled counts one
    // miss per trial — so the two miss totals are not comparable.
}

/// Trial-execution layer of the tree cache: a trial continued from cached
/// shorter prefixes must produce the same loss bits as a cold fit of the
/// same configuration — growing forward (4 → 16 trees) and snapshotting
/// backward (a 16-tree prefix answering an 8-tree trial) — and its grown
/// states must be storable back for the next continuation.
#[test]
fn warm_continuation_trials_match_cold_fits_bit_for_bit() {
    let data = dataset(Task::Binary, 400, 31);
    let fingerprint = data.fingerprint();
    let est = Estimator::from(LearnerKind::LightGbm);
    let space = est.space(data.n_rows());
    let strategy = ResampleStrategy::Cv { folds: 5 };
    let metric = flaml_metrics::Metric::default_for(data.task());
    let pool = ExecPool::new(2);
    let sample = data.n_rows();
    let mut plane = DataPlane::new(data.shuffled_view(7), strategy, true, 64 * 1024 * 1024);
    let mut cache = TreeCache::new(true, 64 * 1024 * 1024);

    // Runs the init config at `trees` trees; with a cache, looks up every
    // fold's prefix first and stores the grown states back after. Returns
    // (loss bits, fold hits, deepest continued state).
    let mut run = |trees: usize, cache: Option<&mut TreeCache>| -> (u64, usize, usize) {
        let tidx = space.index_of("tree_num").expect("gbdt space has tree_num");
        let mut values = space.init_config().values().to_vec();
        values[tidx] = trees as f64;
        let config = flaml_search::Config::from(values);
        let bp = est
            .boost_params(&config, &space)
            .expect("the init config is seed-invariant, hence cacheable");
        let (td, _) = plane.prepare(sample, est.max_bin(&config, &space));
        let mut cache = cache;
        let mut hits = 0;
        let boost = cache.as_mut().map(|tc| {
            let mut keys = Vec::with_capacity(td.folds.len());
            let mut warm = Vec::with_capacity(td.folds.len());
            for fi in 0..td.folds.len() {
                let key = TreeKey::new(
                    est.name(),
                    config.values(),
                    Some(tidx),
                    sample,
                    fi,
                    bp.max_bin,
                    fingerprint,
                );
                match tc.get(&key) {
                    Some(s) => {
                        hits += 1;
                        warm.push(Some(s));
                    }
                    None => warm.push(None),
                }
                keys.push(key);
            }
            TrialBoost {
                params: bp,
                keys,
                warm,
            }
        });
        let out = run_trial_prepared(
            &td,
            &est,
            &config,
            &space,
            strategy,
            metric,
            9,
            None,
            &pool,
            boost.as_ref(),
        );
        assert!(out.error.is_finite(), "trial at {trees} trees failed");
        let rounds = out
            .fold_states
            .iter()
            .flatten()
            .map(|s| s.rounds_done())
            .max()
            .unwrap_or(0);
        if let (Some(tc), Some(tb)) = (cache, &boost) {
            for (key, state) in tb.keys.iter().zip(&out.fold_states) {
                if let Some(state) = state {
                    tc.store(key.clone(), state.clone());
                }
            }
        }
        (out.error.to_bits(), hits, rounds)
    };

    let (cold4, no_hits, no_states) = run(4, None);
    assert_eq!(no_hits, 0);
    assert_eq!(no_states, 0, "a cold trial carries no continuation states");
    let (seed4, misses, rounds4) = run(4, Some(&mut cache));
    assert_eq!(seed4, cold4, "caching a fresh fit must not change its loss");
    assert_eq!(misses, 0, "an empty cache cannot hit");
    assert_eq!(rounds4, 4);

    // Forward: the 16-tree trial continues every fold from its cached
    // 4-tree prefix and must match a cold 16-tree fit bit-for-bit.
    let (cold16, _, _) = run(16, None);
    let (warm16, hits16, rounds16) = run(16, Some(&mut cache));
    assert_eq!(hits16, 5, "every fold continues from its own prefix");
    assert_eq!(rounds16, 16, "continuation must grow the prefix to 16");
    assert_eq!(warm16, cold16, "warm continuation diverged from cold fit");

    // Backward: an 8-tree trial is answered by a snapshot of the cached
    // 16-tree prefix, again bit-identical to a cold 8-tree fit.
    let (cold8, _, _) = run(8, None);
    let (warm8, hits8, _) = run(8, Some(&mut cache));
    assert_eq!(hits8, 5, "a longer prefix must answer a shorter trial");
    assert_eq!(warm8, cold8, "backward snapshot diverged from cold fit");
}

/// Tree-cache and eviction telemetry: with the cache on, eligible trials
/// perform real lookups; with it off, no counter may move. A one-byte
/// prepared-data budget must surface its evictions.
#[test]
fn tree_cache_and_eviction_telemetry_counters() {
    let data = dataset(Task::Binary, 600, 23);
    let on = telemetry_of(sweep_automl(1), &data);
    assert!(
        on.tree_cache_misses > 0,
        "eligible LightGbm trials must consult the tree cache"
    );
    let off = telemetry_of(sweep_automl(1).tree_cache(false), &data);
    assert_eq!(off.tree_cache_hits, 0, "disabled cache cannot hit");
    assert_eq!(
        off.tree_cache_misses, 0,
        "disabled cache is never consulted"
    );
    assert_eq!(off.trees_saved, 0, "disabled cache saves nothing");
    let evicting = telemetry_of(
        sweep_automl(1).prepared_cache(true).prepared_cache_bytes(1),
        &data,
    );
    assert!(
        evicting.prepared_evictions > 0,
        "a one-byte prepared budget must evict stored entries"
    );
    assert_eq!(
        on.prepared_evictions, 0,
        "the default budget fits this dataset without evicting"
    );
}

/// Views wrap the root dataset without copying feature columns: a prefix
/// selection costs O(1) bytes and a scattered one O(rows) indices, never
/// O(rows × features) values.
#[test]
fn views_do_not_copy_the_dataset() {
    let data = dataset(Task::Regression, 500, 29);
    let view: DatasetView = data.shuffled_view(1);
    assert!(view.same_root(&data.view()));
    assert!(
        view.selection_bytes() < view.materialized_bytes() / 2,
        "shuffled selection ({} bytes) should be far below a copy ({} bytes)",
        view.selection_bytes(),
        view.materialized_bytes()
    );
    let prefix = data.view().prefix(400);
    assert_eq!(
        prefix.selection_bytes(),
        0,
        "prefix selection carries no per-row bytes"
    );
}
