//! Equivalence sweep for the zero-copy data plane: fitting against an
//! Arc-backed [`DatasetView`] must be bit-identical to fitting against a
//! materialized copy, pre-binned fits must match unprepared fits, and the
//! AutoML trial trace must not change whether the prepared-data cache is
//! on, off, or evicting under a tiny byte budget — at any worker count.

use flaml_core::{
    default_virtual_cost, event_channel, fit_learner, fit_learner_prepared, AutoMl, Estimator,
    LearnerKind, ResampleChoice, Telemetry, TimeSource, TrialRecord,
};
use flaml_data::{Dataset, DatasetView, Task};
use flaml_learners::{PreparedBins, PreparedSort};
use flaml_metrics::Pred;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(task: Task, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x2: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let signal = x0[i] * 2.0 + (x1[i] - 0.5).powi(2) * 4.0 - x2[i] + 0.1 * rng.gen::<f64>();
            match task {
                Task::Binary => f64::from(signal > 1.0),
                Task::MultiClass(k) => {
                    let k = k as f64;
                    (signal.clamp(0.0, 2.999) / 3.0 * k).floor().min(k - 1.0)
                }
                Task::Regression => signal,
            }
        })
        .collect();
    Dataset::new("dp-sweep", task, vec![x0, x1, x2], y).unwrap()
}

/// The bit patterns of a prediction, so equality is exact — not within
/// epsilon. Zero-copy views must not perturb accumulation order.
fn bits(p: &Pred) -> Vec<u64> {
    match p {
        Pred::Probs { p, .. } => p.iter().map(|v| v.to_bits()).collect(),
        Pred::Values(v) => v.iter().map(|v| v.to_bits()).collect(),
    }
}

fn trace(trials: &[TrialRecord]) -> String {
    serde_json::to_string(trials).expect("trial records serialize")
}

/// Every learner × every task: a model fit through a prefix view and one
/// fit through a scattered-index view must equal models fit on owned
/// materialized copies of the same rows, prediction-for-prediction.
#[test]
fn view_fits_match_materialized_copy_fits() {
    for task in [Task::Binary, Task::MultiClass(3), Task::Regression] {
        let data = dataset(task, 260, 11);
        let shuffled = data.shuffled_view(5);
        let prefix = shuffled.prefix(180);
        let scattered: Vec<usize> = (0..200).map(|i| (i * 7) % 260).collect();
        let select = shuffled.select(&scattered);
        let eval = data.view();
        for kind in LearnerKind::ALL {
            let space = kind.space(prefix.n_rows());
            let config = space.init_config();
            for (label, view) in [("prefix", &prefix), ("select", &select)] {
                let from_view = fit_learner(kind, view.clone(), &config, &space, 9, None)
                    .unwrap_or_else(|e| panic!("{kind}/{task:?}/{label} view fit: {e:?}"));
                let copy = view.materialize();
                let from_copy = fit_learner(kind, &copy, &config, &space, 9, None)
                    .unwrap_or_else(|e| panic!("{kind}/{task:?}/{label} copy fit: {e:?}"));
                assert_eq!(
                    bits(&from_view.predict(eval.clone())),
                    bits(&from_copy.predict(eval.clone())),
                    "{kind}/{task:?}/{label}: view-trained and copy-trained models disagree"
                );
                // Predicting through a view must equal predicting on an
                // owned copy of the same rows too.
                assert_eq!(
                    bits(&from_view.predict(view.clone())),
                    bits(&from_view.predict(&copy)),
                    "{kind}/{task:?}/{label}: view and copy predictions disagree"
                );
            }
        }
    }
}

/// GBDT fits with externally prepared bins must be bit-identical to the
/// same fit re-binning internally, at the learner's own max_bin.
#[test]
fn prepared_bins_fits_match_unprepared_fits() {
    for task in [Task::Binary, Task::MultiClass(3), Task::Regression] {
        let data = dataset(task, 240, 13);
        let view = data.shuffled_view(3).prefix(200);
        for kind in [
            LearnerKind::LightGbm,
            LearnerKind::XgBoost,
            LearnerKind::CatBoost,
        ] {
            let est = Estimator::from(kind);
            let space = est.space(view.n_rows());
            let config = space.init_config();
            let max_bin = est
                .max_bin(&config, &space)
                .expect("gbdt learners have a max_bin");
            let sort = PreparedSort::compute(view.clone());
            let bins_mat = PreparedBins::prepare(&sort, view.clone(), max_bin);
            let prepared =
                fit_learner_prepared(kind, &view, &config, &space, 9, None, Some(&bins_mat))
                    .unwrap_or_else(|e| panic!("{kind}/{task:?} prepared fit: {e:?}"));
            let fresh = fit_learner_prepared(kind, &view, &config, &space, 9, None, None)
                .unwrap_or_else(|e| panic!("{kind}/{task:?} unprepared fit: {e:?}"));
            assert_eq!(
                bits(&prepared.predict(data.view())),
                bits(&fresh.predict(data.view())),
                "{kind}/{task:?}: prepared-bins fit diverges from internal binning"
            );
        }
    }
}

fn sweep_automl(workers: usize) -> AutoMl {
    AutoMl::new()
        .time_source(TimeSource::Virtual(default_virtual_cost))
        .sample_size_init(100)
        .time_budget(1.5)
        .max_trials(20)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .resample(ResampleChoice::AlwaysCv)
        .seed(17)
        .workers(workers)
}

/// The trial trace is a pure function of (dataset, settings, seed): the
/// prepared-data cache — on, off, or evicting under a one-byte budget —
/// must never change it, sequentially or with parallel workers.
#[test]
fn cache_on_off_and_evicting_traces_are_identical() {
    let data = dataset(Task::Binary, 600, 19);
    let reference = sweep_automl(1).prepared_cache(true).fit(&data).unwrap();
    assert!(reference.trials.len() > 5, "sweep ran too few trials");
    let want = trace(&reference.trials);
    for workers in [1, 4] {
        for (label, automl) in [
            ("cache on", sweep_automl(workers).prepared_cache(true)),
            ("cache off", sweep_automl(workers).prepared_cache(false)),
            (
                "evicting",
                sweep_automl(workers)
                    .prepared_cache(true)
                    .prepared_cache_bytes(1),
            ),
        ] {
            let run = automl.fit(&data).unwrap();
            assert_eq!(
                want,
                trace(&run.trials),
                "workers={workers}, {label}: trace diverged"
            );
            assert_eq!(
                reference.best_error.to_bits(),
                run.best_error.to_bits(),
                "workers={workers}, {label}: best error diverged"
            );
        }
    }
}

fn telemetry_of(automl: AutoMl, data: &Dataset) -> Telemetry {
    let (sink, rx) = event_channel();
    automl.event_sink(sink).fit(data).unwrap();
    Telemetry::new().drain(&rx)
}

/// With the cache on, repeated trials at one sample size hit the prepared
/// cache and skip dataset copies; with it off every trial misses and the
/// copies actually happen, so no savings may be claimed.
#[test]
fn telemetry_counters_reflect_cache_state() {
    let data = dataset(Task::Binary, 600, 23);
    let on = telemetry_of(sweep_automl(1).prepared_cache(true), &data);
    assert!(on.prepared_hits > 0, "warm trials should hit the cache");
    assert!(on.prepared_misses > 0, "first preparation must miss");
    assert!(
        on.bytes_copied_saved > 0,
        "cache hits should avoid dataset copies"
    );
    let off = telemetry_of(sweep_automl(1).prepared_cache(false), &data);
    assert_eq!(off.prepared_hits, 0, "disabled plane cannot hit");
    assert!(off.prepared_misses > 0, "every disabled trial misses");
    assert_eq!(
        off.bytes_copied_saved, 0,
        "disabled plane materializes real copies, saving nothing"
    );
    // Note: hit/miss units differ by state — enabled counts per cache
    // entry (folds, per-fold sorts, per-fold bins), disabled counts one
    // miss per trial — so the two miss totals are not comparable.
}

/// Views wrap the root dataset without copying feature columns: a prefix
/// selection costs O(1) bytes and a scattered one O(rows) indices, never
/// O(rows × features) values.
#[test]
fn views_do_not_copy_the_dataset() {
    let data = dataset(Task::Regression, 500, 29);
    let view: DatasetView = data.shuffled_view(1);
    assert!(view.same_root(&data.view()));
    assert!(
        view.selection_bytes() < view.materialized_bytes() / 2,
        "shuffled selection ({} bytes) should be far below a copy ({} bytes)",
        view.selection_bytes(),
        view.materialized_bytes()
    );
    let prefix = data.view().prefix(400);
    assert_eq!(
        prefix.selection_bytes(),
        0,
        "prefix selection carries no per-row bytes"
    );
}
