//! Admission control and fair budget sharing across tenant searches.
//!
//! Every accepted `/fit` becomes a [`SearchJob`] wrapping a
//! [`SearchHandle`]; worker threads repeatedly pick a job, run **one
//! slice** (a few trials), and put it back. The pick rule is deficit
//! fairness: each tenant accumulates the budget seconds its slices
//! have charged, and the runnable job belonging to the least-charged
//! tenant goes next — so a tenant running one search and a tenant
//! running five split the pool's time per *tenant*, not per search.
//! Every slice is accounted to telemetry as a
//! [`TrialEventKind::TenantSlice`] event, and the queue depth is
//! sampled as [`TrialEventKind::ServeQueueDepth`] on every transition.
//!
//! Admission is a hard bound on queued-plus-running searches
//! ([`Scheduler::submit`] returns the counts for a typed 429); crash
//! recovery re-admits journaled searches outside the bound, because a
//! restart must never drop work it already accepted.

use crate::api::SearchStatus;
use flaml_core::{
    save_blob_with, ArtifactFormat, AutoMlError, AutoMlResult, BlobOptions, CompiledModel,
    EventSink, Journal, ModelRegistry, SearchHandle, SliceOutcome, TrialEvent, TrialEventKind,
};
use flaml_data::Dataset;
use flaml_store::{atomic_write_file, Storage};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One admitted search: identity, data, and the sliced handle.
pub struct SearchJob {
    /// Owning tenant.
    pub tenant: String,
    /// Search id, unique within the tenant.
    pub id: String,
    /// Slot the result publishes into.
    pub slot: String,
    /// Trials per fair-share slice.
    pub slice_trials: usize,
    /// The sliced, journal-backed search.
    pub handle: SearchHandle,
    /// Training data.
    pub data: Dataset,
}

struct Queues {
    queued: VecDeque<SearchJob>,
    running: usize,
    /// Budget seconds charged per tenant, the fairness currency.
    deficits: BTreeMap<String, f64>,
}

/// The shared fit scheduler (see the module docs).
pub struct Scheduler {
    root: PathBuf,
    max_inflight: usize,
    registry: Arc<ModelRegistry>,
    sink: EventSink,
    storage: Arc<dyn Storage>,
    artifact_format: ArtifactFormat,
    queues: Mutex<Queues>,
    work: Condvar,
    statuses: Mutex<BTreeMap<(String, String), SearchStatus>>,
    shutdown: AtomicBool,
}

impl Scheduler {
    /// A scheduler writing artifacts under `root` (through `storage`)
    /// in `artifact_format` and publishing into `registry`; at most
    /// `max_inflight` searches queued or running.
    pub fn new(
        root: PathBuf,
        max_inflight: usize,
        registry: Arc<ModelRegistry>,
        sink: EventSink,
        storage: Arc<dyn Storage>,
        artifact_format: ArtifactFormat,
    ) -> Scheduler {
        Scheduler {
            root,
            max_inflight: max_inflight.max(1),
            registry,
            sink,
            storage,
            artifact_format,
            queues: Mutex::new(Queues {
                queued: VecDeque::new(),
                running: 0,
                deficits: BTreeMap::new(),
            }),
            work: Condvar::new(),
            statuses: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Searches currently queued or running.
    pub fn inflight(&self) -> usize {
        let q = self.queues.lock().expect("scheduler lock");
        q.queued.len() + q.running
    }

    /// Admits `job` if the in-flight bound allows, or returns
    /// `(inflight, max_inflight)` for the 429 body. An admitted job's
    /// status starts as `"queued"`.
    pub fn submit(&self, job: SearchJob) -> Result<(), (usize, usize)> {
        {
            let q = self.queues.lock().expect("scheduler lock");
            let inflight = q.queued.len() + q.running;
            if inflight >= self.max_inflight {
                return Err((inflight, self.max_inflight));
            }
        }
        self.admit(job);
        Ok(())
    }

    /// Admits `job` unconditionally — the crash-recovery path, which
    /// must never drop work a previous process accepted.
    pub fn submit_recovered(&self, job: SearchJob) {
        self.admit(job);
    }

    fn admit(&self, job: SearchJob) {
        self.set_status(&job, "queued", None, None);
        let depth;
        {
            let mut q = self.queues.lock().expect("scheduler lock");
            // A tenant joins at the current minimum so it gets its fair
            // turn immediately without erasing others' history.
            let floor = q.deficits.values().copied().fold(f64::INFINITY, f64::min);
            q.deficits
                .entry(job.tenant.clone())
                .or_insert(if floor.is_finite() { floor } else { 0.0 });
            q.queued.push_back(job);
            depth = q.queued.len() + q.running;
        }
        self.emit_depth(depth);
        self.work.notify_one();
    }

    /// Records a terminal status directly — for recovered searches that
    /// already finished or failed on a previous process.
    pub fn record_terminal(&self, tenant: &str, status: SearchStatus) {
        self.statuses
            .lock()
            .expect("status lock")
            .insert((tenant.to_string(), status.id.clone()), status);
    }

    /// The status of one search, if known.
    pub fn status(&self, tenant: &str, id: &str) -> Option<SearchStatus> {
        self.statuses
            .lock()
            .expect("status lock")
            .get(&(tenant.to_string(), id.to_string()))
            .cloned()
    }

    /// Counts of searches by state, for `/stats`.
    pub fn state_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for s in self.statuses.lock().expect("status lock").values() {
            *out.entry(s.state.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Stops the worker loops (idempotent). Queued jobs stay queued —
    /// their journals make them recoverable by the next process.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    /// One worker loop: run until [`Scheduler::stop`]. Spawn this on a
    /// dedicated thread; multiple workers share the queue safely.
    pub fn run_worker(self: &Arc<Self>) {
        loop {
            let Some(mut job) = self.next_job() else {
                return;
            };
            let spent_before = job.handle.spent();
            let committed_before = job.handle.committed();
            self.set_status(&job, "running", None, None);
            self.emit_depth_now();

            let slice = catch_unwind(AssertUnwindSafe(|| {
                job.handle.run_slice(&job.data, job.slice_trials)
            }));
            let charged = job.handle.spent() - spent_before;
            let trials = job.handle.committed() - committed_before;
            self.charge(&job.tenant, charged, trials);

            match slice {
                Ok(Ok(SliceOutcome::Paused { .. })) => {
                    self.set_status(&job, "queued", None, None);
                    let depth;
                    {
                        let mut q = self.queues.lock().expect("scheduler lock");
                        q.running -= 1;
                        q.queued.push_back(job);
                        depth = q.queued.len() + q.running;
                    }
                    self.emit_depth(depth);
                    self.work.notify_one();
                }
                Ok(Ok(SliceOutcome::Finished(result))) => {
                    match self.publish(&job, &result) {
                        Ok(version) => self.set_status_full(
                            &job,
                            "finished",
                            Some(result.best_error),
                            Some(version),
                            None,
                        ),
                        Err(msg) => {
                            self.mark_failed(&job, &msg);
                        }
                    }
                    self.finish_one();
                }
                Ok(Err(e)) => {
                    // A durability failure (ENOSPC, failed fsync) is a
                    // storage fault, not a search defect: count it so
                    // operators can tell a full disk from a bad config.
                    if matches!(e, AutoMlError::Durability(_)) {
                        self.emit_storage_fault(&job.tenant, &e.to_string());
                    }
                    self.mark_failed(&job, &e.to_string());
                    self.finish_one();
                }
                Err(panic) => {
                    let msg = panic_message(&panic);
                    self.mark_failed(&job, &format!("slice panicked: {msg}"));
                    self.finish_one();
                }
            }
        }
    }

    /// Blocks for the fairest runnable job; `None` on shutdown.
    fn next_job(&self) -> Option<SearchJob> {
        let mut q = self.queues.lock().expect("scheduler lock");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(idx) = pick_fairest(&q) {
                let job = q.queued.remove(idx).expect("index from pick_fairest");
                q.running += 1;
                return Some(job);
            }
            q = self.work.wait(q).expect("scheduler lock");
        }
    }

    fn finish_one(&self) {
        let depth;
        {
            let mut q = self.queues.lock().expect("scheduler lock");
            q.running -= 1;
            depth = q.queued.len() + q.running;
        }
        self.emit_depth(depth);
        self.work.notify_one();
    }

    fn charge(&self, tenant: &str, cost: f64, trials: usize) {
        {
            let mut q = self.queues.lock().expect("scheduler lock");
            *q.deficits.entry(tenant.to_string()).or_insert(0.0) += cost.max(0.0);
        }
        let mut ev = TrialEvent::new(TrialEventKind::TenantSlice);
        ev.tenant = tenant.to_string();
        ev.cost = Some(cost.max(0.0));
        ev.sample_size = trials;
        self.sink.emit(ev);
    }

    /// Writes `compiled` to `{stem}{suffix}` in the configured format
    /// and best-effort removes the other-format sibling, so recovery
    /// never resurrects a stale model from a previous format setting.
    pub(crate) fn write_artifact(
        &self,
        compiled: &CompiledModel,
        dir: &std::path::Path,
        stem: &str,
    ) -> Result<u64, flaml_core::ArtifactError> {
        let format = self.artifact_format;
        let path = dir.join(format!("{stem}{}", format.suffix()));
        let fp = match format {
            ArtifactFormat::Json => compiled.save_with(self.storage.as_ref(), &path)?,
            ArtifactFormat::Blob => {
                save_blob_with(self.storage.as_ref(), &path, compiled, BlobOptions::tuned())?
            }
        };
        for other in ArtifactFormat::ALL {
            if other != format {
                let _ = self
                    .storage
                    .remove(&dir.join(format!("{stem}{}", other.suffix())));
            }
        }
        Ok(fp)
    }

    fn publish(&self, job: &SearchJob, result: &AutoMlResult) -> Result<u64, String> {
        let compiled = result
            .compile()
            .map_err(|e: AutoMlError| format!("compiling best model failed: {e}"))?;
        let tenant_dir = self.root.join(&job.tenant);
        // Completion marker first: recovery treats a search with an
        // artifact file as done even if the process dies mid-publish.
        // Both writes publish atomically, so a crash anywhere in here
        // leaves either no marker (the journal re-derives the result on
        // restart) or a complete one — never a torn artifact.
        self.write_artifact(&compiled, &tenant_dir, &job.id)
            .map_err(|e| {
                self.emit_storage_fault(&job.tenant, &e.to_string());
                format!("writing artifact failed: {e}")
            })?;
        // The slot file is the durable registry: restart republishes it.
        self.write_artifact(&compiled, &tenant_dir.join("slots"), &job.slot)
            .map_err(|e| {
                self.emit_storage_fault(&job.tenant, &e.to_string());
                format!("writing slot artifact failed: {e}")
            })?;
        Ok(self
            .registry
            .publish(&format!("{}/{}", job.tenant, job.slot), compiled)
            .version)
    }

    fn mark_failed(&self, job: &SearchJob, msg: &str) {
        let marker = self
            .root
            .join(&job.tenant)
            .join(format!("{}.failed", job.id));
        let written = marker
            .parent()
            .map_or(Ok(()), |dir| self.storage.create_dir_all(dir))
            .and_then(|()| atomic_write_file(self.storage.as_ref(), &marker, msg.as_bytes()));
        if let Err(e) = written {
            // The marker is what recovery reads; losing it silently
            // would resurrect this failed search as healthy on restart.
            // The in-memory status still reports the failure, and the
            // fault is counted for operators.
            self.emit_storage_fault(&job.tenant, &format!("writing failure marker: {e}"));
        }
        self.set_status_full(job, "failed", None, None, Some(msg.to_string()));
    }

    fn emit_storage_fault(&self, tenant: &str, detail: &str) {
        let mut ev = TrialEvent::new(TrialEventKind::StorageFault);
        ev.tenant = tenant.to_string();
        ev.message = Some(detail.to_string());
        self.sink.emit(ev);
    }

    fn set_status(&self, job: &SearchJob, state: &str, best: Option<f64>, version: Option<u64>) {
        self.set_status_full(job, state, best, version, None);
    }

    fn set_status_full(
        &self,
        job: &SearchJob,
        state: &str,
        best_loss: Option<f64>,
        published_version: Option<u64>,
        error: Option<String>,
    ) {
        // Keep the last observed best loss when a slice has none to
        // report (statuses only ever gain information).
        let mut statuses = self.statuses.lock().expect("status lock");
        let prior_best = statuses
            .get(&(job.tenant.clone(), job.id.clone()))
            .and_then(|s| s.best_loss);
        statuses.insert(
            (job.tenant.clone(), job.id.clone()),
            SearchStatus {
                id: job.id.clone(),
                state: state.to_string(),
                committed: job.handle.committed(),
                spent: job.handle.spent(),
                best_loss: best_loss.or(prior_best),
                slot: job.slot.clone(),
                published_version,
                error,
            },
        );
    }

    fn emit_depth_now(&self) {
        let depth = self.inflight();
        self.emit_depth(depth);
    }

    fn emit_depth(&self, depth: usize) {
        let mut ev = TrialEvent::new(TrialEventKind::ServeQueueDepth);
        ev.sample_size = depth;
        self.sink.emit(ev);
    }
}

/// Index of the queued job whose tenant has the smallest deficit;
/// FIFO breaks ties (the front-most job of the least-charged tenant).
fn pick_fairest(q: &Queues) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (idx, job) in q.queued.iter().enumerate() {
        let deficit = q.deficits.get(&job.tenant).copied().unwrap_or(0.0);
        if best.is_none_or(|(d, _)| deficit < d) {
            best = Some((deficit, idx));
        }
    }
    best.map(|(_, idx)| idx)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Reads the journal-backed progress of a search — committed trials,
/// spent budget, best loss — used by recovery to report statuses.
pub fn journal_progress(path: &std::path::Path) -> (usize, f64, Option<f64>) {
    match Journal::read(path) {
        Ok(j) => {
            let best = j.best_trial().map(|t| t.loss);
            (j.trials.len(), j.spent_budget(), best)
        }
        Err(_) => (0, 0.0, None),
    }
}
