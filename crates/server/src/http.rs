//! A minimal, dependency-free HTTP/1.1 layer over `std::net`.
//!
//! Exactly the subset a JSON service needs: request line, headers,
//! `Content-Length` bodies, keep-alive. No chunked encoding, no TLS,
//! no pipelining beyond the sequential keep-alive loop. Requests are
//! size-capped so a misbehaving client cannot balloon server memory.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (64 MiB — fit requests carry inline
/// datasets).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Largest accepted header block.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Raw body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// The path split on `/`, empty segments dropped:
    /// `/tenants/acme/fit` → `["tenants", "acme", "fit"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Reads one request off `reader`. Returns `Ok(None)` on a clean EOF
/// (client closed between requests).
///
/// # Errors
///
/// Returns an I/O error on malformed request lines, oversized heads or
/// bodies, or a socket failure.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !target.starts_with('/') || !version.starts_with("HTTP/1.") {
        return Err(bad("malformed request line"));
    }
    let path = target.split('?').next().unwrap_or("/").to_string();

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = !version.ends_with("1.0");
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("header block too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            }
            "connection" => {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes one `application/json` response.
///
/// # Errors
///
/// Returns any socket write error.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        507 => "Insufficient Storage",
        _ => "",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Whether an I/O error is a socket timeout. Unix reports an expired
/// `SO_RCVTIMEO` as `WouldBlock`, Windows as `TimedOut`; both mean the
/// peer stalled past the configured deadline.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}
