//! The multi-tenant service: shared state, request routing, crash
//! recovery, and the accept loop.
//!
//! ## Tenancy model
//!
//! Every route is rooted at `/tenants/{tenant}`. A tenant owns named
//! model slots (registry keys `tenant/slot`) and searches; everything
//! durable lives under `root/{tenant}/`: the search journal
//! (`{id}.jsonl`), the request sidecar (`{id}.request.json`), the
//! completion marker (`{id}.artifact.json` / `{id}.artifact.blob` per
//! [`ServerConfig::artifact_format`], or `{id}.failed`), and the
//! durable slot registry (`slots/{slot}.artifact.json` or `.blob`).
//! Recovery reads either artifact format, blob preferred. Names are
//! restricted to `[A-Za-z0-9_-]`, so no request can escape its
//! tenant's directory.
//!
//! ## Recovery protocol
//!
//! The sidecar is written (and fsynced) *before* a fit is admitted, so
//! after a kill the directory tree is the full intent log. On startup
//! the server replays it: slot artifacts are republished, searches
//! with a completion marker are recorded (finished searches republish
//! their artifact), and every remaining sidecar is re-admitted — with
//! [`SearchHandle::attach`] when its journal exists, from scratch
//! otherwise. Because searches run under the virtual clock and the
//! journal replays deterministically, the resumed trace is
//! byte-identical (canonically) to a never-interrupted run.

use crate::api::{
    valid_name, ErrorBody, FitAccepted, FitRequest, PredictRequest, PredictResponse, Rejected,
    StreamChunkRequest, StreamPushResponse, StreamRoundBody, StreamStatusBody,
};
use crate::http::{read_request, write_response, Request};
use crate::scheduler::{journal_progress, Scheduler, SearchJob};
use flaml_core::{
    discover, ArtifactFormat, BatchEngine, BlobModel, CompiledModel, EventSink, ExecPool,
    ModelRegistry, SearchHandle, ServeTelemetry, Telemetry, TrialEvent, TrialEventKind,
};
use flaml_data::{Dataset, Task};
use flaml_online::{ChunkOutcome, OnlineError, OnlineRuntime, OnlineSession};
use flaml_store::{atomic_write_file, is_stale_tmp, Storage};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Durable state root (journals, sidecars, artifacts).
    pub root: PathBuf,
    /// Admission bound: max searches queued or running.
    pub max_inflight: usize,
    /// Rows per serving batch.
    pub batch_rows: usize,
    /// Workers in the shared serving pool.
    pub serve_workers: usize,
    /// Fit scheduler worker threads time-slicing searches.
    pub fit_workers: usize,
    /// Tenant allow-list (`None` = any well-formed tenant name).
    pub tenants: Option<Vec<String>>,
    /// Backend for every durable write (sidecars, markers, artifacts,
    /// journals). Production uses [`flaml_store::disk`]; tests wrap it
    /// in a [`flaml_store::ChaosStorage`] to inject disk faults.
    pub storage: Arc<dyn Storage>,
    /// Read/write timeout on client sockets (`None` = block forever).
    /// A stalled client beyond the timeout gets a 408 and its
    /// connection thread back.
    pub socket_timeout: Option<Duration>,
    /// Format new artifacts are published in: the portable JSON
    /// document (default) or the mmap-able binary blob. Recovery and
    /// `/predict` read both regardless — the knob only picks what
    /// *writes* produce.
    pub artifact_format: ArtifactFormat,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            root: PathBuf::from("flaml-server-state"),
            max_inflight: 8,
            batch_rows: 256,
            serve_workers: 2,
            fit_workers: 1,
            tenants: None,
            storage: flaml_store::disk(),
            socket_timeout: Some(Duration::from_secs(30)),
            artifact_format: ArtifactFormat::Json,
        }
    }
}

struct Inner {
    cfg: ServerConfig,
    registry: Arc<ModelRegistry>,
    pool: ExecPool,
    scheduler: Arc<Scheduler>,
    telemetry: Arc<Mutex<(Telemetry, ServeTelemetry)>>,
    sink: EventSink,
    next_ids: Mutex<BTreeMap<String, u64>>,
    /// Open streaming sessions keyed `tenant/slot`. Each session is its
    /// own mutex: a challenger round blocks only its stream, not the
    /// map (chunks for other streams keep flowing).
    streams: Mutex<BTreeMap<String, Arc<Mutex<OnlineSession>>>>,
    shutdown: AtomicBool,
}

/// The multi-tenant AutoML service.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Builds the server state and runs crash recovery against
    /// `cfg.root` (see the module docs). Does not bind a socket —
    /// follow with [`Server::serve`] or [`Server::start`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the state root cannot be created or
    /// scanned.
    pub fn new(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.root)?;
        let telemetry = Arc::new(Mutex::new((Telemetry::new(), ServeTelemetry::new())));
        let fold = Arc::clone(&telemetry);
        let sink = EventSink::callback(move |ev| {
            let mut t = fold.lock().expect("telemetry lock");
            t.0.record(ev);
            t.1.record(ev);
        });
        let registry = Arc::new(ModelRegistry::with_sink(sink.clone()));
        let scheduler = Arc::new(Scheduler::new(
            cfg.root.clone(),
            cfg.max_inflight,
            Arc::clone(&registry),
            sink.clone(),
            Arc::clone(&cfg.storage),
            cfg.artifact_format,
        ));
        let server = Server {
            inner: Arc::new(Inner {
                pool: ExecPool::new(cfg.serve_workers),
                registry,
                scheduler,
                telemetry,
                sink,
                next_ids: Mutex::new(BTreeMap::new()),
                streams: Mutex::new(BTreeMap::new()),
                shutdown: AtomicBool::new(false),
                cfg,
            }),
        };
        server.recover()?;
        for _ in 0..server.inner.cfg.fit_workers.max(1) {
            let scheduler = Arc::clone(&server.inner.scheduler);
            std::thread::spawn(move || scheduler.run_worker());
        }
        Ok(server)
    }

    /// Replays the durable state under the root (module docs: recovery
    /// protocol). Corrupt files are quarantined to `*.corrupt` — never
    /// served, never fatal — and stale `*.tmp` debris from interrupted
    /// atomic publishes is swept.
    fn recover(&self) -> std::io::Result<()> {
        let storage = Arc::clone(&self.inner.cfg.storage);
        let root = &self.inner.cfg.root;
        for tenant_path in storage.scan(root).map_err(std::io::Error::from)? {
            if !storage.is_dir(&tenant_path) {
                continue;
            }
            let tenant = tenant_path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !valid_name(&tenant) {
                continue;
            }
            let slots_dir = tenant_path.join("slots");
            self.sweep_stale_tmps(&tenant_path);
            self.sweep_stale_tmps(&slots_dir);
            // 1. Republish the durable slot registry; a slot file that
            //    no longer parses is sidelined instead of served. A
            //    slot may carry a `.blob`, a `.json`, or (after a
            //    format switch interrupted mid-publish) both — blob is
            //    preferred and a corrupt file falls back to the other.
            let mut slot_names = std::collections::BTreeSet::new();
            for file in storage.scan(&slots_dir).unwrap_or_default() {
                let Some(name) = file.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                for format in ArtifactFormat::ALL {
                    if let Some(slot) = name.strip_suffix(format.suffix()) {
                        slot_names.insert(slot.to_string());
                    }
                }
            }
            for slot in slot_names {
                if let Some(model) = self.load_artifact(&tenant, &slots_dir, &slot, "slot") {
                    self.inner
                        .registry
                        .publish(&format!("{tenant}/{slot}"), model);
                }
            }
            // 2. Replay every accepted search, newest id last.
            let sidecars: Vec<PathBuf> = storage
                .scan(&tenant_path)
                .map_err(std::io::Error::from)?
                .into_iter()
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".request.json"))
                })
                .collect();
            for sidecar in sidecars {
                let id = sidecar
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".request.json"))
                    .unwrap_or_default()
                    .to_string();
                self.bump_next_id(&tenant, &id);
                self.recover_search(&tenant, &id, &sidecar);
            }
            // 3. Reopen every streaming session, completing interrupted
            //    chunks and republishing stream champions.
            self.recover_streams(&tenant, &tenant_path);
        }
        Ok(())
    }

    /// Deletes interrupted-publish temp files (`.{name}.{nonce}.tmp`)
    /// from `dir`. They are never referenced by any protocol state, so
    /// removal is always safe.
    fn sweep_stale_tmps(&self, dir: &std::path::Path) {
        let storage = &self.inner.cfg.storage;
        for entry in storage.scan(dir).unwrap_or_default() {
            if is_stale_tmp(&entry) {
                let _ = storage.remove(&entry);
            }
        }
    }

    /// Renames a corrupt durable file to `{name}.corrupt` and records a
    /// [`TrialEventKind::StorageQuarantined`] event carrying the path
    /// and the parse failure. Recovery continues either way.
    fn quarantine(&self, path: &std::path::Path, tenant: &str, why: &str) {
        let quarantined = path.with_file_name(format!(
            "{}.corrupt",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        ));
        let moved = self.inner.cfg.storage.rename(path, &quarantined);
        let mut ev = TrialEvent::new(TrialEventKind::StorageQuarantined);
        ev.tenant = tenant.to_string();
        ev.label = path.display().to_string();
        ev.message = Some(match moved {
            Ok(()) => why.to_string(),
            Err(e) => format!("{why} (quarantine rename failed: {e})"),
        });
        self.inner.sink.emit(ev);
    }

    /// Loads `{stem}.artifact.blob` or `{stem}.artifact.json` from
    /// `dir`, blob first (the cheaper, mmap-backed open). A file that
    /// fails validation is quarantined and the next format is tried,
    /// so a corrupt blob degrades to its JSON sibling instead of
    /// losing the model. `what` labels the quarantine event ("slot",
    /// "completion").
    fn load_artifact(
        &self,
        tenant: &str,
        dir: &std::path::Path,
        stem: &str,
        what: &str,
    ) -> Option<CompiledModel> {
        let storage = self.inner.cfg.storage.as_ref();
        for format in ArtifactFormat::ALL {
            let path = dir.join(format!("{stem}{}", format.suffix()));
            if !storage.exists(&path) {
                continue;
            }
            let loaded = match format {
                ArtifactFormat::Blob => {
                    BlobModel::open_with(storage, &path).map(|b| b.to_compiled())
                }
                ArtifactFormat::Json => CompiledModel::load_with(storage, &path),
            };
            match loaded {
                Ok(model) => return Some(model),
                Err(e) => {
                    self.quarantine(&path, tenant, &format!("{what} artifact ({format}): {e}"));
                }
            }
        }
        None
    }

    fn recover_search(&self, tenant: &str, id: &str, sidecar: &std::path::Path) {
        let tenant_dir = self.inner.cfg.root.join(tenant);
        let journal = tenant_dir.join(format!("{id}.jsonl"));
        let failed = tenant_dir.join(format!("{id}.failed"));
        let request: Option<FitRequest> = std::fs::read_to_string(sidecar)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok());
        let terminal = |state: &str, slot: &str, version, error| {
            let (committed, spent, best_loss) = journal_progress(&journal);
            crate::api::SearchStatus {
                id: id.to_string(),
                state: state.to_string(),
                committed,
                spent,
                best_loss,
                slot: slot.to_string(),
                published_version: version,
                error,
            }
        };
        let Some(request) = request else {
            // The sidecar is the intent record; without it the search
            // cannot be reconstructed. Sideline it and report the loss.
            self.quarantine(sidecar, tenant, "unreadable request sidecar");
            self.inner.scheduler.record_terminal(
                tenant,
                terminal(
                    "failed",
                    "",
                    None,
                    Some("unreadable request sidecar (quarantined)".into()),
                ),
            );
            return;
        };
        if failed.exists() {
            let msg = std::fs::read_to_string(&failed).unwrap_or_default();
            self.inner
                .scheduler
                .record_terminal(tenant, terminal("failed", &request.slot, None, Some(msg)));
            return;
        }
        // Finished on a previous process: republish its completion
        // artifact (`.blob` preferred, `.json` fallback) so the slot
        // serves again even if the slot file was lost. A corrupt
        // completion marker is quarantined and the search falls through
        // to journal re-admission, which re-derives the artifact from
        // the committed trials.
        if let Some(m) = self.load_artifact(tenant, &tenant_dir, id, "completion") {
            let version = self
                .inner
                .registry
                .publish(&format!("{tenant}/{}", request.slot), m)
                .version;
            self.inner.scheduler.record_terminal(
                tenant,
                terminal("finished", &request.slot, Some(version), None),
            );
            return;
        }
        // In flight when the process died: re-admit, resuming the
        // journal byte-identically where one exists. An unreadable
        // journal is quarantined and the search restarts from scratch —
        // slower, but never wedged.
        let built = request.to_automl().and_then(|automl| {
            let automl = automl.storage(Arc::clone(&self.inner.cfg.storage));
            let data = request.to_dataset()?;
            let handle = if journal.exists() {
                match SearchHandle::attach(automl.clone(), &journal) {
                    Ok(handle) => handle,
                    Err(e) => {
                        self.quarantine(&journal, tenant, &format!("search journal: {e}"));
                        SearchHandle::new(automl, &journal)
                    }
                }
            } else {
                SearchHandle::new(automl, &journal)
            };
            Ok((handle, data))
        });
        match built {
            Ok((handle, data)) => {
                self.inner.scheduler.submit_recovered(SearchJob {
                    tenant: tenant.to_string(),
                    id: id.to_string(),
                    slot: request.slot.clone(),
                    slice_trials: request.slice_trials(),
                    handle,
                    data,
                });
            }
            Err(msg) => {
                self.inner
                    .scheduler
                    .record_terminal(tenant, terminal("failed", &request.slot, None, Some(msg)));
            }
        }
    }

    fn bump_next_id(&self, tenant: &str, seen: &str) {
        if let Some(n) = seen.strip_prefix('s').and_then(|n| n.parse::<u64>().ok()) {
            let mut ids = self.inner.next_ids.lock().expect("id lock");
            let next = ids.entry(tenant.to_string()).or_insert(0);
            *next = (*next).max(n + 1);
        }
    }

    fn assign_id(&self, tenant: &str) -> String {
        let mut ids = self.inner.next_ids.lock().expect("id lock");
        let next = ids.entry(tenant.to_string()).or_insert(0);
        let id = format!("s{:04}", *next);
        *next += 1;
        id
    }

    /// Serves connections on `listener` until [`Server::stop`]. Each
    /// connection gets a thread; requests are handled keep-alive.
    pub fn serve(&self, listener: TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = self.clone();
                    std::thread::spawn(move || server.handle_connection(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Short poll: with connection-per-request clients this
                    // sleep is on the latency path of every request.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => break,
            }
        }
    }

    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// accept loop on a background thread, and returns the running
    /// server plus its local address.
    ///
    /// # Errors
    ///
    /// Returns any bind error.
    pub fn start(self, addr: &str) -> std::io::Result<(Server, std::net::SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = self.clone();
        std::thread::spawn(move || server.serve(listener));
        Ok((self, local))
    }

    /// Stops the accept loop and the fit workers. Queued searches stay
    /// journaled and resume on the next start — stopping is equivalent
    /// to a crash, by design.
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.scheduler.stop();
    }

    fn handle_connection(&self, stream: TcpStream) {
        // Small JSON responses + Nagle + delayed ACK = ~20ms floors;
        // a latency-gated service always wants immediate writes.
        let _ = stream.set_nodelay(true);
        // Socket timeouts bound how long a stalled client can pin this
        // thread; they are set on the fd, so the clone shares them.
        let _ = stream.set_read_timeout(self.inner.cfg.socket_timeout);
        let _ = stream.set_write_timeout(self.inner.cfg.socket_timeout);
        let mut reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => return,
        };
        let mut stream = stream;
        loop {
            let request = match read_request(&mut reader) {
                Ok(Some(r)) => r,
                Ok(None) => return,
                Err(e) if crate::http::is_timeout(&e) => {
                    self.inner
                        .sink
                        .emit(TrialEvent::new(TrialEventKind::ServeTimedOut));
                    let _ = write_response(
                        &mut stream,
                        408,
                        &ErrorBody::json("request timed out"),
                        false,
                    );
                    return;
                }
                Err(e) => {
                    let _ =
                        write_response(&mut stream, 400, &ErrorBody::json(e.to_string()), false);
                    return;
                }
            };
            let keep_alive = request.keep_alive;
            let (status, body) = catch_unwind(AssertUnwindSafe(|| self.route(&request)))
                .unwrap_or_else(|_| (500, ErrorBody::json("request handler panicked")));
            if write_response(&mut stream, status, &body, keep_alive).is_err() || !keep_alive {
                return;
            }
        }
    }

    /// Dispatches one request to `(status, json_body)`.
    fn route(&self, req: &Request) -> (u16, String) {
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => (200, "{\"ok\":true}".to_string()),
            ("GET", ["stats"]) => (200, self.stats_json()),
            ("POST", ["tenants", tenant, "fit"]) => self.handle_fit(tenant, &req.body),
            ("GET", ["tenants", tenant, "searches", id]) => self.handle_status(tenant, id),
            ("POST", ["tenants", tenant, "predict"]) => self.handle_predict(tenant, &req.body),
            ("POST", ["tenants", tenant, "slots", slot]) => {
                self.handle_publish(tenant, slot, &req.body)
            }
            ("POST", ["tenants", tenant, "slots", slot, "rollback"]) => {
                self.handle_rollback(tenant, slot)
            }
            ("POST", ["tenants", tenant, "stream", slot]) => {
                self.handle_stream_push(tenant, slot, &req.body)
            }
            ("GET", ["tenants", tenant, "stream", slot, "status"]) => {
                self.handle_stream_status(tenant, slot)
            }
            _ => (404, ErrorBody::json("no such route")),
        }
    }

    fn check_tenant(&self, tenant: &str) -> Option<(u16, String)> {
        if !valid_name(tenant) {
            return Some((400, ErrorBody::json("invalid tenant name")));
        }
        if let Some(allowed) = &self.inner.cfg.tenants {
            if !allowed.iter().any(|t| t == tenant) {
                return Some((403, ErrorBody::json(format!("unknown tenant {tenant:?}"))));
            }
        }
        None
    }

    fn handle_fit(&self, tenant: &str, body: &[u8]) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        let request: FitRequest = match parse_json(body) {
            Ok(r) => r,
            Err(msg) => return (400, ErrorBody::json(msg)),
        };
        if !valid_name(&request.slot) {
            return (400, ErrorBody::json("invalid slot name"));
        }
        let (automl, data) = match request
            .to_automl()
            .and_then(|a| Ok((a, request.to_dataset()?)))
        {
            Ok(pair) => pair,
            Err(msg) => return (400, ErrorBody::json(msg)),
        };
        // Admission check before any durable write; a rejected request
        // leaves no trace except the telemetry counter.
        let inflight = self.inner.scheduler.inflight();
        if inflight >= self.inner.cfg.max_inflight {
            return self.reject_fit(tenant, inflight);
        }
        let id = self.assign_id(tenant);
        let tenant_dir = self.inner.cfg.root.join(tenant);
        let journal = tenant_dir.join(format!("{id}.jsonl"));
        // Persist the sidecar durably BEFORE admitting: once the client
        // sees 202, a kill at any point leaves enough on disk to resume.
        // Atomic publish, so a crash mid-write cannot leave a torn
        // sidecar that recovery would quarantine.
        let storage = Arc::clone(&self.inner.cfg.storage);
        let persisted = storage
            .create_dir_all(&tenant_dir)
            .and_then(|()| {
                atomic_write_file(
                    storage.as_ref(),
                    &tenant_dir.join(format!("{id}.request.json")),
                    serde_json::to_string(&request)
                        .expect("requests always serialize")
                        .as_bytes(),
                )
            })
            .inspect_err(|e| {
                let mut ev = TrialEvent::new(TrialEventKind::StorageFault);
                ev.tenant = tenant.to_string();
                ev.message = Some(e.to_string());
                self.inner.sink.emit(ev);
            });
        if let Err(e) = persisted {
            let status = if e.is_no_space() { 507 } else { 500 };
            return (
                status,
                ErrorBody::json(format!("persisting request failed: {e}")),
            );
        }
        let job = SearchJob {
            tenant: tenant.to_string(),
            id: id.clone(),
            slot: request.slot.clone(),
            slice_trials: request.slice_trials(),
            handle: SearchHandle::new(automl.storage(Arc::clone(&storage)), &journal),
            data,
        };
        match self.inner.scheduler.submit(job) {
            Ok(()) => {
                let accepted = FitAccepted {
                    id: id.clone(),
                    tenant: tenant.to_string(),
                    status_path: format!("/tenants/{tenant}/searches/{id}"),
                };
                (
                    202,
                    serde_json::to_string(&accepted).expect("response serialization"),
                )
            }
            Err((inflight, _)) => {
                // Lost the admission race; drop the sidecar again.
                let _ = storage.remove(&tenant_dir.join(format!("{id}.request.json")));
                self.reject_fit(tenant, inflight)
            }
        }
    }

    fn reject_fit(&self, tenant: &str, inflight: usize) -> (u16, String) {
        let mut ev = TrialEvent::new(TrialEventKind::ServeRejected);
        ev.tenant = tenant.to_string();
        self.inner.sink.emit(ev);
        let body = Rejected {
            error: "too many searches in flight".to_string(),
            inflight,
            max_inflight: self.inner.cfg.max_inflight,
        };
        (
            429,
            serde_json::to_string(&body).expect("response serialization"),
        )
    }

    fn handle_status(&self, tenant: &str, id: &str) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        match self.inner.scheduler.status(tenant, id) {
            Some(status) => (
                200,
                serde_json::to_string(&status).expect("response serialization"),
            ),
            None => (404, ErrorBody::json(format!("no search {id:?}"))),
        }
    }

    fn handle_predict(&self, tenant: &str, body: &[u8]) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        let request: PredictRequest = match parse_json(body) {
            Ok(r) => r,
            Err(msg) => return (400, ErrorBody::json(msg)),
        };
        if !valid_name(&request.slot) {
            return (400, ErrorBody::json("invalid slot name"));
        }
        let key = format!("{tenant}/{}", request.slot);
        let Some(served) = self.inner.registry.get(&key) else {
            return (
                404,
                ErrorBody::json(format!("no model in slot {:?}", request.slot)),
            );
        };
        let expected = served.model.n_features();
        if request.columns.len() != expected {
            return (
                400,
                ErrorBody::json(format!(
                    "model expects {expected} feature column(s), request has {}",
                    request.columns.len()
                )),
            );
        }
        let rows = request.columns.first().map_or(0, Vec::len);
        if rows == 0 || request.columns.iter().any(|c| c.len() != rows) {
            return (
                400,
                ErrorBody::json("columns must be non-empty and equal-length"),
            );
        }
        // Prediction input needs no labels; a zero regression target
        // satisfies the Dataset invariants without affecting inference.
        let data = match Dataset::new(
            key.clone(),
            Task::Regression,
            request.columns,
            vec![0.0; rows],
        ) {
            Ok(d) => d,
            Err(e) => return (400, ErrorBody::json(format!("invalid matrix: {e:?}"))),
        };
        let tenant_name = tenant.to_string();
        let inner_sink = self.inner.sink.clone();
        let engine = BatchEngine::new(&self.inner.pool, self.inner.cfg.batch_rows).with_sink(
            EventSink::callback(move |ev| {
                let mut ev = ev.clone();
                ev.tenant = tenant_name.clone();
                inner_sink.emit(ev);
            }),
        );
        // Serve under the registry key so slot stats are per-tenant.
        let pred = match catch_unwind(AssertUnwindSafe(|| {
            engine.predict(&key, &served.model, &data)
        })) {
            Ok(p) => p,
            Err(_) => return (500, ErrorBody::json("prediction panicked")),
        };
        let (n_classes, values) = match pred {
            flaml_metrics::Pred::Values(v) => (1, v),
            flaml_metrics::Pred::Probs { n_classes, p } => (n_classes, p),
        };
        let response = PredictResponse {
            rows,
            n_classes,
            values,
            version: served.version,
            fingerprint: served.fingerprint,
        };
        (
            200,
            serde_json::to_string(&response).expect("response serialization"),
        )
    }

    fn handle_publish(&self, tenant: &str, slot: &str, body: &[u8]) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        if !valid_name(slot) {
            return (400, ErrorBody::json("invalid slot name"));
        }
        // Sniff the format from the payload itself: a binary blob
        // leads with its magic, everything else must be the UTF-8 JSON
        // document. Either way the model re-persists in the server's
        // configured format — the wire format and the disk format are
        // independent choices.
        let model = if body.starts_with(&flaml_core::BLOB_MAGIC) {
            match BlobModel::from_bytes(body) {
                Ok(b) => b.to_compiled(),
                Err(e) => return (400, ErrorBody::json(format!("bad blob artifact: {e}"))),
            }
        } else {
            let text = match std::str::from_utf8(body) {
                Ok(t) => t,
                Err(_) => return (400, ErrorBody::json("artifact body is not UTF-8")),
            };
            match CompiledModel::from_artifact_str(text) {
                Ok(m) => m,
                Err(e) => return (400, ErrorBody::json(format!("bad artifact: {e}"))),
            }
        };
        // Durable slot registry first, then the live swap.
        let slots_dir = self.inner.cfg.root.join(tenant).join("slots");
        if let Err(e) = self
            .inner
            .scheduler
            .write_artifact(&model, &slots_dir, slot)
        {
            let mut ev = TrialEvent::new(TrialEventKind::StorageFault);
            ev.tenant = tenant.to_string();
            ev.message = Some(e.to_string());
            self.inner.sink.emit(ev);
            let status = if e.is_no_space() { 507 } else { 500 };
            return (
                status,
                ErrorBody::json(format!("persisting slot failed: {e}")),
            );
        }
        let version = self
            .inner
            .registry
            .publish(&format!("{tenant}/{slot}"), model)
            .version;
        (200, format!("{{\"version\":{version}}}"))
    }

    fn handle_rollback(&self, tenant: &str, slot: &str) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        match self.inner.registry.rollback(&format!("{tenant}/{slot}")) {
            Some(version) => (200, format!("{{\"version\":{version}}}")),
            None => (
                409,
                ErrorBody::json("slot unknown or already at its oldest version"),
            ),
        }
    }

    /// Process-local wiring for the stream at `tenant`/`slot`:
    /// challenger searches share the fit worker count, and promotions
    /// publish straight into the serving registry under the same key
    /// `/predict` reads, so the stream's champion serves immediately.
    fn stream_runtime(&self, tenant: &str, slot: &str) -> OnlineRuntime {
        OnlineRuntime {
            storage: Arc::clone(&self.inner.cfg.storage),
            workers: self.inner.cfg.fit_workers.max(1),
            registry: Some(Arc::clone(&self.inner.registry)),
            slot: format!("{tenant}/{slot}"),
        }
    }

    /// Reopens every streaming session under `tenant_path/streams`.
    /// [`OnlineSession::open`] replays the stream journal, completes
    /// any chunk interrupted by the kill, and republishes the champion
    /// — so the resumed promotion trace is byte-identical with a
    /// never-killed process and the slot serves again at once. A
    /// stream that fails to open is quarantined like any other corrupt
    /// durable state.
    fn recover_streams(&self, tenant: &str, tenant_path: &std::path::Path) {
        let storage = &self.inner.cfg.storage;
        let streams_dir = tenant_path.join("streams");
        self.sweep_stale_tmps(&streams_dir);
        for dir in storage.scan(&streams_dir).unwrap_or_default() {
            if !storage.is_dir(&dir) {
                continue;
            }
            let slot = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !valid_name(&slot) {
                continue;
            }
            match OnlineSession::open(&dir, self.stream_runtime(tenant, &slot)) {
                Ok(session) => {
                    self.inner
                        .streams
                        .lock()
                        .expect("streams lock")
                        .insert(format!("{tenant}/{slot}"), Arc::new(Mutex::new(session)));
                }
                Err(e) => self.quarantine(&dir, tenant, &format!("stream state: {e}")),
            }
        }
    }

    fn handle_stream_push(&self, tenant: &str, slot: &str, body: &[u8]) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        if !valid_name(slot) {
            return (400, ErrorBody::json("invalid slot name"));
        }
        let request: StreamChunkRequest = match parse_json(body) {
            Ok(r) => r,
            Err(msg) => return (400, ErrorBody::json(msg)),
        };
        let chunk = match request.dataset.to_dataset() {
            Ok(d) => d,
            Err(msg) => return (400, ErrorBody::json(msg)),
        };
        if chunk.n_rows() == 0 {
            return (400, ErrorBody::json("chunk must have at least one row"));
        }
        let key = format!("{tenant}/{slot}");
        let cell = {
            // Map lock held only for lookup/creation, never across a
            // push: a challenger round blocks its own stream only.
            let mut streams = self.inner.streams.lock().expect("streams lock");
            match streams.get(&key) {
                Some(cell) => Arc::clone(cell),
                None => {
                    // First chunk for this slot: open the durable
                    // stream if one exists on disk, otherwise create it
                    // under the request's options.
                    let dir = self.inner.cfg.root.join(tenant).join("streams").join(slot);
                    let rt = self.stream_runtime(tenant, slot);
                    let opened = match OnlineSession::open(&dir, rt.clone()) {
                        Err(OnlineError::Journal(flaml_online::LogError::Missing)) => {
                            let options = request.options.clone().unwrap_or_default();
                            match options.to_config(chunk.task(), chunk.n_features()) {
                                Ok(cfg) => OnlineSession::create(&dir, cfg, rt),
                                Err(msg) => return (400, ErrorBody::json(msg)),
                            }
                        }
                        other => other,
                    };
                    match opened {
                        Ok(session) => {
                            let cell = Arc::new(Mutex::new(session));
                            streams.insert(key.clone(), Arc::clone(&cell));
                            cell
                        }
                        Err(e) => return self.stream_error(tenant, &e),
                    }
                }
            }
        };
        let mut session = cell.lock().expect("stream session lock");
        match session.push_chunk(&chunk) {
            Ok(outcome) => {
                let era = session.status().era;
                let response = match outcome {
                    ChunkOutcome::Duplicate => StreamPushResponse {
                        slot: slot.to_string(),
                        chunk: session.status().chunks.saturating_sub(1),
                        duplicate: true,
                        champion_loss: None,
                        drifted: false,
                        rolled_back: false,
                        round: None,
                        era,
                    },
                    ChunkOutcome::Processed {
                        chunk,
                        champion_loss,
                        drifted,
                        round,
                        rolled_back,
                    } => StreamPushResponse {
                        slot: slot.to_string(),
                        chunk,
                        duplicate: false,
                        champion_loss,
                        drifted,
                        rolled_back,
                        round: round.map(|r| StreamRoundBody {
                            round: r.round,
                            reason: r.reason,
                            promoted: r.promoted,
                            challenger_loss: r.challenger_loss,
                            champion_loss: r.champion_loss,
                        }),
                        era,
                    },
                };
                (
                    200,
                    serde_json::to_string(&response).expect("response serialization"),
                )
            }
            Err(e) => {
                // A mid-chunk failure wedges the session. Recover in
                // place — reopening replays the journal and completes
                // whatever the failed push committed — so the client's
                // retry of this chunk lands on a healthy session (and
                // dedupes if the chunk actually finished).
                if session.is_wedged() {
                    let dir = session.dir().to_path_buf();
                    if let Ok(reopened) =
                        OnlineSession::open(&dir, self.stream_runtime(tenant, slot))
                    {
                        *session = reopened;
                    }
                }
                self.stream_error(tenant, &e)
            }
        }
    }

    /// Maps an [`OnlineError`] to an HTTP response: schema and config
    /// problems are the client's (400), state conflicts are 409, and
    /// storage failures surface as 507/500 with a telemetry event.
    fn stream_error(&self, tenant: &str, e: &OnlineError) -> (u16, String) {
        let status = match e {
            OnlineError::SchemaMismatch { .. } | OnlineError::Config(_) => 400,
            OnlineError::Wedged | OnlineError::Corrupt(_) => 409,
            OnlineError::Durability(s) => {
                let mut ev = TrialEvent::new(TrialEventKind::StorageFault);
                ev.tenant = tenant.to_string();
                ev.message = Some(s.to_string());
                self.inner.sink.emit(ev);
                if s.is_no_space() {
                    507
                } else {
                    500
                }
            }
            _ => 500,
        };
        (status, ErrorBody::json(e.to_string()))
    }

    fn handle_stream_status(&self, tenant: &str, slot: &str) -> (u16, String) {
        if let Some(err) = self.check_tenant(tenant) {
            return err;
        }
        if !valid_name(slot) {
            return (400, ErrorBody::json("invalid slot name"));
        }
        let cell = {
            let streams = self.inner.streams.lock().expect("streams lock");
            streams.get(&format!("{tenant}/{slot}")).cloned()
        };
        match cell {
            Some(cell) => {
                let session = cell.lock().expect("stream session lock");
                let body = StreamStatusBody::from_status(slot, &session.status());
                (
                    200,
                    serde_json::to_string(&body).expect("response serialization"),
                )
            }
            None => (404, ErrorBody::json(format!("no stream {slot:?}"))),
        }
    }

    fn stats_json(&self) -> String {
        let (telemetry, serve) = {
            let t = self.inner.telemetry.lock().expect("telemetry lock");
            (t.0.clone(), t.1.clone())
        };
        let by_tenant = telemetry
            .by_tenant
            .iter()
            .map(|(tenant, u)| {
                (
                    tenant.clone(),
                    TenantStats {
                        fit_slices: u.fit_slices,
                        fit_trials: u.fit_trials,
                        fit_cost_secs: u.fit_cost_secs,
                        serve_batches: u.serve_batches,
                        serve_rows: u.serve_rows,
                        rejected: u.rejected,
                    },
                )
            })
            .collect();
        let slots = serve
            .slots
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    SlotStatsBody {
                        batches: s.batches,
                        rows: s.rows,
                        p50_secs: s.p50(),
                        p99_secs: s.p99(),
                        rows_per_sec: s.throughput(),
                    },
                )
            })
            .collect();
        let body = StatsBody {
            searches: self.inner.scheduler.state_counts(),
            inflight: self.inner.scheduler.inflight(),
            max_inflight: self.inner.cfg.max_inflight,
            trials_started: telemetry.started,
            trials_finished: telemetry.finished,
            tenant_slices: telemetry.tenant_slices,
            serve_rejected: telemetry.serve_rejected,
            serve_queue_depth: telemetry.serve_queue_depth,
            serve_queue_depth_max: telemetry.serve_queue_depth_max,
            storage_quarantined: telemetry.storage_quarantined,
            storage_faults: telemetry.storage_faults,
            serve_timed_out: telemetry.serve_timed_out,
            promoted: serve.promoted,
            rolled_back: serve.rolled_back,
            by_tenant,
            slots,
        };
        serde_json::to_string(&body).expect("stats serialization")
    }

    /// Journals discovered under the state root (diagnostics).
    pub fn journals(&self) -> Vec<flaml_core::DiscoveredJournal> {
        discover(&self.inner.cfg.root).unwrap_or_default()
    }
}

/// `/stats` body.
#[derive(Debug, Serialize)]
struct StatsBody {
    searches: BTreeMap<String, usize>,
    inflight: usize,
    max_inflight: usize,
    trials_started: usize,
    trials_finished: usize,
    tenant_slices: usize,
    serve_rejected: usize,
    serve_queue_depth: usize,
    serve_queue_depth_max: usize,
    storage_quarantined: usize,
    storage_faults: usize,
    serve_timed_out: usize,
    promoted: usize,
    rolled_back: usize,
    by_tenant: BTreeMap<String, TenantStats>,
    slots: BTreeMap<String, SlotStatsBody>,
}

#[derive(Debug, Serialize)]
struct TenantStats {
    fit_slices: usize,
    fit_trials: usize,
    fit_cost_secs: f64,
    serve_batches: usize,
    serve_rows: usize,
    rejected: usize,
}

#[derive(Debug, Serialize)]
struct SlotStatsBody {
    batches: usize,
    rows: usize,
    p50_secs: f64,
    p99_secs: f64,
    rows_per_sec: f64,
}

fn parse_json<T: for<'de> serde::Deserialize<'de>>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    serde_json::from_str(text).map_err(|e| format!("bad JSON body: {e}"))
}
