//! A multi-tenant AutoML service for the FLAML reproduction.
//!
//! `flaml-server` puts an HTTP front end on the whole stack — search
//! ([`flaml_core::AutoMl`]), journaling ([`flaml_core::Journal`]), and
//! serving ([`flaml_core::ModelRegistry`] / [`flaml_core::BatchEngine`])
//! — and multiplexes many tenants onto shared execution pools:
//!
//! * **Admission control** — at most `max_inflight` searches queued or
//!   running; excess `/fit` requests get a typed `429` with the current
//!   counts, and every rejection is counted per tenant in telemetry.
//! * **Fair budget sharing** — searches run in small slices under a
//!   deficit scheduler: the runnable search of the least-charged tenant
//!   goes next, so pool time divides per tenant, not per search (see
//!   [`scheduler`]).
//! * **Crash recovery** — every accepted fit is persisted (request
//!   sidecar + trial journal) before the client sees `202`. A killed
//!   server replays the tree on restart: finished artifacts are
//!   republished and in-flight searches resume their journals
//!   byte-identically under the deterministic virtual clock (see
//!   [`server`]).
//!
//! The HTTP layer is a dependency-free `std::net` HTTP/1.1 subset
//! ([`http`]); wire types live in [`api`] and are shared with the
//! `bench_server` load generator so a verifier can re-run any search
//! from its sidecar and byte-compare journals.
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness |
//! | `GET /stats` | telemetry: per-tenant usage, slot latency, queue depth |
//! | `POST /tenants/{t}/fit` | submit a search (`202` / `429`) |
//! | `GET /tenants/{t}/searches/{id}` | search status |
//! | `POST /tenants/{t}/predict` | batched prediction from a slot |
//! | `POST /tenants/{t}/slots/{s}` | publish an artifact directly |
//! | `POST /tenants/{t}/slots/{s}/rollback` | roll a slot back |
//! | `POST /tenants/{t}/stream/{s}` | push one chunk into a streaming AutoML session |
//! | `GET /tenants/{t}/stream/{s}/status` | stream status: era, drift events, promotions |
//!
//! Streaming slots are champion–challenger [`flaml_online`] sessions:
//! every pushed chunk is evaluated prequentially, drift triggers a
//! budgeted challenger search, and promotions publish into the same
//! registry key `/predict` reads. Stream state is journaled under
//! `root/{tenant}/streams/{slot}/` and recovers byte-identically after
//! a kill, like searches.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod scheduler;
pub mod server;

pub use api::{
    valid_name, DatasetPayload, ErrorBody, FitAccepted, FitRequest, PredictRequest,
    PredictResponse, Rejected, SearchStatus, StreamChunkRequest, StreamOptions, StreamPushResponse,
    StreamRoundBody, StreamStatusBody, DEFAULT_SLICE_TRIALS,
};
pub use scheduler::{Scheduler, SearchJob};
pub use server::{Server, ServerConfig};
