//! The service's JSON wire types, shared by the server and its load
//! generator (`bench_server`).
//!
//! [`FitRequest`] is the contract that makes crash recovery
//! *verifiable*: the server persists every accepted request as a
//! sidecar JSON file next to the tenant's journal, and
//! [`FitRequest::to_automl`] / [`FitRequest::to_dataset`] are the
//! **only** way either side turns a request into a run. A verifier can
//! therefore re-run any search from its sidecar in a fresh process and
//! byte-compare journals — there is no second code path to drift.

use flaml_core::{default_virtual_cost, AutoMl, LearnerKind, TimeSource};
use flaml_data::{Dataset, Task};
use serde::{Deserialize, Serialize};

/// Default trials per scheduler slice when a request does not say.
pub const DEFAULT_SLICE_TRIALS: usize = 4;

/// An inline dataset: feature columns plus target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetPayload {
    /// Dataset name (recorded in the journal header).
    pub name: String,
    /// `"binary"`, `"regression"`, or `"multiclass:<k>"`.
    pub task: String,
    /// Feature columns, column-major.
    pub columns: Vec<Vec<f64>>,
    /// Target values, one per row.
    pub target: Vec<f64>,
}

impl DatasetPayload {
    fn parse_task(&self) -> Result<Task, String> {
        match self.task.as_str() {
            "binary" => Ok(Task::Binary),
            "regression" => Ok(Task::Regression),
            other => match other.strip_prefix("multiclass:").map(str::parse) {
                Some(Ok(k)) => Ok(Task::MultiClass(k)),
                _ => Err(format!(
                    "unknown task {other:?}; expected binary, regression, or multiclass:<k>"
                )),
            },
        }
    }

    /// Materializes the inline payload as a [`Dataset`].
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown task string or invalid data
    /// (ragged columns, bad labels, …).
    pub fn to_dataset(&self) -> Result<Dataset, String> {
        let task = self.parse_task()?;
        Dataset::new(
            self.name.clone(),
            task,
            self.columns.clone(),
            self.target.clone(),
        )
        .map_err(|e| format!("invalid dataset: {e:?}"))
    }

    /// Builds the wire payload for an in-memory [`Dataset`] (clients,
    /// load generators, and tests assembling stream chunks).
    pub fn from_dataset(data: &Dataset) -> DatasetPayload {
        DatasetPayload {
            name: data.name().to_string(),
            task: flaml_online::task_name(data.task()),
            columns: data.columns().to_vec(),
            target: data.target().to_vec(),
        }
    }
}

/// A tenant's request to run an AutoML search and publish the winner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitRequest {
    /// Tenant slot the best model is published into when the search
    /// finishes.
    pub slot: String,
    /// Search budget in virtual seconds (the service always runs the
    /// deterministic virtual clock so resumed traces can be verified).
    pub time_budget: f64,
    /// Trial cap (`None` = budget-bound only).
    #[serde(default)]
    pub max_trials: Option<usize>,
    /// Random seed.
    #[serde(default)]
    pub seed: u64,
    /// Estimator names (empty = every builtin learner).
    #[serde(default)]
    pub estimators: Vec<String>,
    /// Initial subsample size override.
    #[serde(default)]
    pub sample_size_init: Option<usize>,
    /// Trials the scheduler runs per fair-share slice.
    #[serde(default)]
    pub slice_trials: Option<usize>,
    /// The training data, inline.
    pub dataset: DatasetPayload,
}

impl FitRequest {
    /// Builds the exact [`AutoMl`] settings this request runs under —
    /// the single construction point shared by server and verifier.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown estimator.
    pub fn to_automl(&self) -> Result<AutoMl, String> {
        let mut automl = AutoMl::new()
            .time_budget(self.time_budget)
            .seed(self.seed)
            .time_source(TimeSource::Virtual(default_virtual_cost));
        if let Some(n) = self.max_trials {
            automl = automl.max_trials(n);
        }
        if let Some(s) = self.sample_size_init {
            automl = automl.sample_size_init(s);
        }
        if !self.estimators.is_empty() {
            let kinds = self
                .estimators
                .iter()
                .map(|name| {
                    LearnerKind::parse(name).ok_or_else(|| format!("unknown estimator {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            automl = automl.estimators(kinds);
        }
        Ok(automl)
    }

    /// Materializes the request's inline dataset.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown task string or invalid data
    /// (ragged columns, bad labels, …).
    pub fn to_dataset(&self) -> Result<Dataset, String> {
        self.dataset.to_dataset()
    }

    /// Trials per scheduler slice for this search.
    pub fn slice_trials(&self) -> usize {
        self.slice_trials.unwrap_or(DEFAULT_SLICE_TRIALS).max(1)
    }
}

/// Optional stream tuning knobs, honored on the chunk that *creates*
/// the stream (later chunks run under the config journaled at
/// creation; resending different options is not an error, just inert).
/// Absent fields take the [`flaml_online::OnlineConfig`] defaults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamOptions {
    /// Master seed for challenger searches.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Evaluation metric name (default: log-loss for classification,
    /// MSE for regression).
    #[serde(default)]
    pub metric: Option<String>,
    /// Estimator names challenger rounds search over.
    #[serde(default)]
    pub estimators: Vec<String>,
    /// Sliding-window length in chunks.
    #[serde(default)]
    pub window_chunks: Option<usize>,
    /// Recent chunks held out to score challenger vs. champion.
    #[serde(default)]
    pub holdout_chunks: Option<usize>,
    /// Chunks accumulated before the first (warmup) round.
    #[serde(default)]
    pub warmup_chunks: Option<usize>,
    /// Drift-detector recent-window length in chunks.
    #[serde(default)]
    pub drift_window: Option<usize>,
    /// Drift-detector loss-shift threshold.
    #[serde(default)]
    pub drift_threshold: Option<f64>,
    /// Margin a challenger must beat the champion by on the holdout.
    #[serde(default)]
    pub promote_margin: Option<f64>,
    /// Probation chunks before a promotion is final (0 = no rollback).
    #[serde(default)]
    pub probation_chunks: Option<usize>,
    /// Scheduled challenger round every N chunks (0 = drift-only).
    #[serde(default)]
    pub refresh_every: Option<usize>,
    /// Virtual-seconds budget per challenger search.
    #[serde(default)]
    pub round_budget: Option<f64>,
    /// Trial cap per challenger search.
    #[serde(default)]
    pub round_trials: Option<usize>,
}

impl StreamOptions {
    /// Resolves the options against the defaults for a stream of
    /// `task` with `features` columns.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown metric or estimator.
    pub fn to_config(
        &self,
        task: Task,
        features: usize,
    ) -> Result<flaml_online::OnlineConfig, String> {
        let mut cfg = flaml_online::OnlineConfig::new(task, features);
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(name) = &self.metric {
            cfg.metric = Some(
                flaml_metrics::Metric::parse(name)
                    .ok_or_else(|| format!("unknown metric {name:?}"))?,
            );
        }
        if !self.estimators.is_empty() {
            cfg.estimators = self
                .estimators
                .iter()
                .map(|name| {
                    LearnerKind::parse(name).ok_or_else(|| format!("unknown estimator {name:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
        }
        if let Some(v) = self.window_chunks {
            cfg.window_chunks = v;
        }
        if let Some(v) = self.holdout_chunks {
            cfg.holdout_chunks = v;
        }
        if let Some(v) = self.warmup_chunks {
            cfg.warmup_chunks = v;
        }
        if let Some(v) = self.drift_window {
            cfg.drift_window = v;
        }
        if let Some(v) = self.drift_threshold {
            cfg.drift_threshold = v;
        }
        if let Some(v) = self.promote_margin {
            cfg.promote_margin = v;
        }
        if let Some(v) = self.probation_chunks {
            cfg.probation_chunks = v;
        }
        if let Some(v) = self.refresh_every {
            cfg.refresh_every = v;
        }
        if let Some(v) = self.round_budget {
            cfg.round_budget = v;
        }
        if let Some(v) = self.round_trials {
            cfg.round_trials = v;
        }
        Ok(cfg)
    }
}

/// One stream chunk: the inline data plus (optionally) the stream
/// config for the creating chunk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamChunkRequest {
    /// Stream tuning, honored when this chunk creates the stream.
    #[serde(default)]
    pub options: Option<StreamOptions>,
    /// The chunk's rows, inline.
    pub dataset: DatasetPayload,
}

/// A challenger round reported inside a [`StreamPushResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamRoundBody {
    /// Round index (1-based).
    pub round: u64,
    /// Trigger: `"warmup"`, `"drift"`, or `"scheduled"`.
    pub reason: String,
    /// Whether the challenger was promoted.
    pub promoted: bool,
    /// Challenger's holdout loss.
    pub challenger_loss: f64,
    /// Champion's holdout loss (infinite when there was no champion).
    pub champion_loss: f64,
}

/// `200` body for a stream chunk push.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPushResponse {
    /// Stream slot (also the `/predict` slot serving its champion).
    pub slot: String,
    /// The chunk's index in the stream.
    pub chunk: usize,
    /// Whether the chunk was a duplicate redelivery (nothing happened).
    pub duplicate: bool,
    /// Champion's prequential loss on this chunk, once one exists.
    pub champion_loss: Option<f64>,
    /// Whether the drift detector fired on this chunk.
    pub drifted: bool,
    /// Whether probation failed and the previous champion was restored.
    pub rolled_back: bool,
    /// The challenger round this chunk triggered, if any.
    pub round: Option<StreamRoundBody>,
    /// Era of the serving champion after this chunk (0 = none yet).
    pub era: u64,
}

/// Stream status, as returned by `GET /tenants/{t}/stream/{s}/status`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatusBody {
    /// Stream slot.
    pub slot: String,
    /// Chunks ingested (the next chunk's index).
    pub chunks: usize,
    /// Challenger rounds started.
    pub rounds: u64,
    /// Era of the serving champion (0 = none yet).
    pub era: u64,
    /// Drift events fired.
    pub drift_events: usize,
    /// Promotions (including warmup).
    pub promotions: usize,
    /// Rejected challenger rounds.
    pub rejections: usize,
    /// Probation rollbacks.
    pub rollbacks: usize,
    /// Champion's loss on the most recent evaluated chunk.
    pub last_loss: Option<f64>,
    /// Probation chunks remaining for the current champion.
    pub probation_left: usize,
    /// Chunks currently in the sliding window.
    pub window: usize,
}

impl StreamStatusBody {
    /// Wraps an [`flaml_online::StreamStatus`] snapshot for the wire.
    pub fn from_status(slot: &str, s: &flaml_online::StreamStatus) -> StreamStatusBody {
        StreamStatusBody {
            slot: slot.to_string(),
            chunks: s.chunks,
            rounds: s.rounds,
            era: s.era,
            drift_events: s.drift_events,
            promotions: s.promotions,
            rejections: s.rejections,
            rollbacks: s.rollbacks,
            last_loss: s.last_loss,
            probation_left: s.probation_left,
            window: s.window,
        }
    }
}

/// A tenant's batched prediction request against a published slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Slot to serve from.
    pub slot: String,
    /// Feature columns, column-major (must match the model's feature
    /// count).
    pub columns: Vec<Vec<f64>>,
}

/// `202 Accepted` body for a fit submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitAccepted {
    /// Server-assigned search id, unique per tenant.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Poll here: `/tenants/{tenant}/searches/{id}`.
    pub status_path: String,
}

/// `429` body when admission control rejects a fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rejected {
    /// Human-readable reason.
    pub error: String,
    /// Searches currently queued or running.
    pub inflight: usize,
    /// The configured admission bound.
    pub max_inflight: usize,
}

/// Search status, as returned by the status endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchStatus {
    /// Search id.
    pub id: String,
    /// `"queued"`, `"running"`, `"finished"`, or `"failed"`.
    pub state: String,
    /// Committed trials so far.
    pub committed: usize,
    /// Budget seconds spent so far.
    pub spent: f64,
    /// Best loss so far, if any trial succeeded.
    pub best_loss: Option<f64>,
    /// Slot the result publishes into.
    pub slot: String,
    /// Registry version published on finish.
    pub published_version: Option<u64>,
    /// Failure detail when `state == "failed"`.
    pub error: Option<String>,
}

/// Prediction response: flattened scores plus shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Rows predicted.
    pub rows: usize,
    /// Classes per row (1 for regression).
    pub n_classes: usize,
    /// Row-major flattened predictions, length `rows * n_classes`.
    pub values: Vec<f64>,
    /// Registry version that served the request.
    pub version: u64,
    /// Fingerprint of the serving model.
    pub fingerprint: u64,
}

/// Generic error body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable message.
    pub error: String,
}

impl ErrorBody {
    /// Serializes `{"error": msg}`.
    pub fn json(msg: impl Into<String>) -> String {
        serde_json::to_string(&ErrorBody { error: msg.into() })
            .expect("error body serialization is infallible")
    }
}

/// A name usable as a tenant, slot, or search id: `[A-Za-z0-9_-]`,
/// 1–64 chars. Path-traversal-proof by construction (journals and
/// sidecars live at paths built from these names).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_request_round_trips_and_builds() {
        let req = FitRequest {
            slot: "churn".into(),
            time_budget: 2.0,
            max_trials: Some(10),
            seed: 3,
            estimators: vec!["lightgbm".into(), "lr".into()],
            sample_size_init: Some(100),
            slice_trials: None,
            dataset: DatasetPayload {
                name: "d".into(),
                task: "binary".into(),
                columns: vec![vec![0.0, 1.0, 0.5, 0.25]],
                target: vec![0.0, 1.0, 1.0, 0.0],
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: FitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        let data = back.to_dataset().unwrap();
        assert_eq!(data.n_rows(), 4);
        back.to_automl().unwrap();
        assert_eq!(back.slice_trials(), DEFAULT_SLICE_TRIALS);
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let mut req = FitRequest {
            slot: "s".into(),
            time_budget: 1.0,
            max_trials: None,
            seed: 0,
            estimators: vec!["not-a-learner".into()],
            sample_size_init: None,
            slice_trials: None,
            dataset: DatasetPayload {
                name: "d".into(),
                task: "ternary".into(),
                columns: vec![vec![0.0]],
                target: vec![0.0],
            },
        };
        assert!(req.to_automl().unwrap_err().contains("not-a-learner"));
        assert!(req.to_dataset().unwrap_err().contains("ternary"));
        req.dataset.task = "multiclass:3".into();
        req.dataset.target = vec![5.0];
        assert!(req.to_dataset().unwrap_err().contains("invalid dataset"));
    }

    #[test]
    fn stream_options_resolve_against_defaults() {
        let defaults = StreamOptions::default().to_config(Task::Binary, 3).unwrap();
        assert_eq!(defaults, flaml_online::OnlineConfig::new(Task::Binary, 3));

        let opts = StreamOptions {
            seed: Some(7),
            metric: Some("mse".into()),
            estimators: vec!["lr".into()],
            window_chunks: Some(5),
            promote_margin: Some(0.25),
            ..StreamOptions::default()
        };
        let cfg = opts.to_config(Task::Regression, 2).unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.window_chunks, 5);
        assert_eq!(cfg.promote_margin, 0.25);
        assert_eq!(cfg.estimators, vec![LearnerKind::Lr]);

        let bad = StreamOptions {
            metric: Some("nope".into()),
            ..StreamOptions::default()
        };
        assert!(bad.to_config(Task::Binary, 1).unwrap_err().contains("nope"));
    }

    #[test]
    fn stream_chunk_request_round_trips() {
        let req = StreamChunkRequest {
            options: Some(StreamOptions {
                seed: Some(3),
                ..StreamOptions::default()
            }),
            dataset: DatasetPayload {
                name: "chunk-0".into(),
                task: "binary".into(),
                columns: vec![vec![0.0, 1.0]],
                target: vec![0.0, 1.0],
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: StreamChunkRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(json, serde_json::to_string(&back).unwrap());
        let data = back.dataset.to_dataset().unwrap();
        assert_eq!(
            DatasetPayload::from_dataset(&data).columns,
            req.dataset.columns
        );
        // A bare chunk (no options) is also a valid request.
        let bare: StreamChunkRequest = serde_json::from_str(
            r#"{"dataset":{"name":"c","task":"binary","columns":[[0,1]],"target":[0,1]}}"#,
        )
        .unwrap();
        assert!(bare.options.is_none());
    }

    #[test]
    fn name_validation_rejects_traversal() {
        assert!(valid_name("tenant-1_A"));
        assert!(!valid_name(""));
        assert!(!valid_name("../etc"));
        assert!(!valid_name("a/b"));
        assert!(!valid_name(&"x".repeat(65)));
    }
}
