//! `flaml-server` binary: bind a port, recover state, serve tenants.
//!
//! ```text
//! flaml-server [--port N] [--root DIR] [--max-inflight N]
//!              [--batch-rows N] [--serve-workers N] [--fit-workers N]
//!              [--tenants a,b,c] [--socket-timeout SECS]
//!              [--artifact-format json|blob] [--io-chaos SEED:RATE]
//! ```
//!
//! `--artifact-format blob` publishes artifacts as mmap-able binary
//! blobs instead of JSON documents; recovery reads both regardless.
//! `--socket-timeout 0` disables socket timeouts. `--io-chaos`
//! wraps the disk in a seeded fault-injecting storage (short writes,
//! failed fsyncs, ENOSPC at the given rate) — a chaos-testing mode,
//! never for production.

use flaml_core::{ChaosStorage, IoFaultPlan};
use flaml_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig::default();
    let mut port = 8700u16;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--port" => port = value("--port").parse().expect("--port: u16"),
            "--root" => cfg.root = PathBuf::from(value("--root")),
            "--max-inflight" => {
                cfg.max_inflight = value("--max-inflight")
                    .parse()
                    .expect("--max-inflight: usize");
            }
            "--batch-rows" => {
                cfg.batch_rows = value("--batch-rows").parse().expect("--batch-rows: usize");
            }
            "--serve-workers" => {
                cfg.serve_workers = value("--serve-workers")
                    .parse()
                    .expect("--serve-workers: usize");
            }
            "--fit-workers" => {
                cfg.fit_workers = value("--fit-workers")
                    .parse()
                    .expect("--fit-workers: usize");
            }
            "--tenants" => {
                cfg.tenants = Some(
                    value("--tenants")
                        .split(',')
                        .filter(|t| !t.is_empty())
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--artifact-format" => {
                cfg.artifact_format = value("--artifact-format")
                    .parse()
                    .unwrap_or_else(|e| panic!("--artifact-format: {e}"));
            }
            "--socket-timeout" => {
                let secs: u64 = value("--socket-timeout")
                    .parse()
                    .expect("--socket-timeout: seconds");
                cfg.socket_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--io-chaos" => {
                let spec = value("--io-chaos");
                let plan = IoFaultPlan::parse(&spec)
                    .unwrap_or_else(|| panic!("--io-chaos: SEED:RATE, got {spec:?}"));
                eprintln!("warning: disk chaos enabled ({spec}); not for production");
                cfg.storage = Arc::new(ChaosStorage::new(Arc::clone(&cfg.storage), plan));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let root = cfg.root.clone();
    let server = Server::new(cfg).expect("server init");
    let listener = std::net::TcpListener::bind(("0.0.0.0", port)).expect("bind server port");
    let addr = listener.local_addr().expect("local addr");
    println!(
        "flaml-server listening on {addr} (state root {})",
        root.display()
    );
    server.serve(listener);
}
