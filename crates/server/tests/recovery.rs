//! Crash recovery: a server killed mid-search must, on restart, resume
//! the search from its journal and finish with **byte-identical**
//! canonical journal bytes to a never-interrupted reference run, then
//! republish the winner so the tenant's slot serves again.

mod common;

use common::{await_terminal, fit_request, http, scratch_root};
use flaml_core::{Journal, SearchHandle};
use flaml_server::{FitAccepted, Server, ServerConfig};
use std::io::Write;

fn config(root: std::path::PathBuf) -> ServerConfig {
    ServerConfig {
        root,
        max_inflight: 4,
        batch_rows: 64,
        serve_workers: 2,
        fit_workers: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn killed_midsearch_server_resumes_byte_identically() {
    let request = fit_request("churn", 12, 7);
    let data = request.to_dataset().unwrap();

    // Reference: the same request run uninterrupted in one process.
    let ref_path = std::env::temp_dir().join(format!(
        "flaml_server_recovery_ref_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ref_path);
    request
        .to_automl()
        .unwrap()
        .journal(&ref_path)
        .fit(&data)
        .unwrap();
    let reference = Journal::read(&ref_path).unwrap().canonical_bytes();

    // Simulate a server that accepted the fit (durable sidecar), ran
    // one slice, and was then killed: the journal stops mid-search.
    let root = scratch_root("recovery");
    let tenant_dir = root.join("acme");
    std::fs::create_dir_all(&tenant_dir).unwrap();
    let mut sidecar = std::fs::File::create(tenant_dir.join("s0000.request.json")).unwrap();
    sidecar
        .write_all(serde_json::to_string(&request).unwrap().as_bytes())
        .unwrap();
    drop(sidecar);
    let journal = tenant_dir.join("s0000.jsonl");
    let mut handle = SearchHandle::new(request.to_automl().unwrap(), &journal);
    handle.run_slice(&data, 5).unwrap();
    let half = Journal::read(&journal).unwrap().trials.len();
    assert!(
        half > 0 && half < 12,
        "crash must land mid-search, got {half}"
    );
    drop(handle);

    // Restart: recovery re-admits the search and finishes it.
    let (server, addr) = Server::new(config(root.clone()))
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let done = await_terminal(addr, "acme", "s0000");
    assert_eq!(done.state, "finished", "resume failed: {:?}", done.error);
    assert!(done.published_version.is_some());

    // The resumed journal is canonically byte-identical to the
    // uninterrupted reference run.
    let resumed = Journal::read(&journal).unwrap().canonical_bytes();
    assert_eq!(
        resumed, reference,
        "resumed journal diverged from reference"
    );

    // The republished winner serves.
    let predict = "{\"slot\":\"churn\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
    let (status, body) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 200, "predict after recovery failed: {body}");
    server.stop();

    // A second restart finds the completion marker: the search reports
    // finished without re-running, the slot still serves, and new ids
    // continue past the recovered one.
    let (server, addr) = Server::new(config(root))
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let done = await_terminal(addr, "acme", "s0000");
    assert_eq!(done.state, "finished");
    assert_eq!(done.committed, 12);
    let (status, _) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 200);
    let unchanged = Journal::read(&journal).unwrap().canonical_bytes();
    assert_eq!(
        unchanged, reference,
        "restart must not touch a finished journal"
    );

    let (status, body) = http(
        addr,
        "POST",
        "/tenants/acme/fit",
        &serde_json::to_string(&fit_request("other", 4, 1)).unwrap(),
    );
    assert_eq!(status, 202, "{body}");
    let accepted: FitAccepted = serde_json::from_str(&body).unwrap();
    assert_eq!(accepted.id, "s0001", "ids must continue after recovery");
    let done = await_terminal(addr, "acme", "s0001");
    assert_eq!(done.state, "finished", "{:?}", done.error);
    server.stop();
}

#[test]
fn direct_publishes_survive_restart_and_roll_back() {
    let request = fit_request("direct", 6, 21);
    let data = request.to_dataset().unwrap();
    let result = request.to_automl().unwrap().fit(&data).unwrap();
    let artifact_v1 = result.compile().unwrap().to_artifact_string();

    let root = scratch_root("publish");
    let (server, addr) = Server::new(config(root.clone()))
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let (status, body) = http(addr, "POST", "/tenants/acme/slots/direct", &artifact_v1);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "{\"version\":1}");
    let (status, body) = http(addr, "POST", "/tenants/acme/slots/direct", &artifact_v1);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "{\"version\":2}");
    let (status, body) = http(addr, "POST", "/tenants/acme/slots/direct/rollback", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, "{\"version\":1}");
    server.stop();

    // The durable slot file makes the publish survive a restart.
    let (server, addr) = Server::new(config(root))
        .unwrap()
        .start("127.0.0.1:0")
        .unwrap();
    let predict = "{\"slot\":\"direct\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
    let (status, body) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 200, "slot lost across restart: {body}");
    server.stop();
}
