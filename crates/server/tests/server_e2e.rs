//! End-to-end service tests over a real socket: the fit → status →
//! predict lifecycle, admission control, input validation, and the
//! direct publish/rollback slot routes.

mod common;

use common::{await_terminal, fit_request, http, scratch_root};
use flaml_server::{FitAccepted, PredictResponse, Rejected, Server, ServerConfig};

fn start(root: std::path::PathBuf, max_inflight: usize) -> (Server, std::net::SocketAddr) {
    let cfg = ServerConfig {
        root,
        max_inflight,
        batch_rows: 64,
        serve_workers: 2,
        fit_workers: 1,
        ..ServerConfig::default()
    };
    Server::new(cfg)
        .expect("server init")
        .start("127.0.0.1:0")
        .expect("bind")
}

#[test]
fn fit_predict_lifecycle() {
    let (server, addr) = start(scratch_root("lifecycle"), 4);

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

    let request = fit_request("churn", 10, 3);
    let (status, body) = http(
        addr,
        "POST",
        "/tenants/acme/fit",
        &serde_json::to_string(&request).unwrap(),
    );
    assert_eq!(status, 202, "fit rejected: {body}");
    let accepted: FitAccepted = serde_json::from_str(&body).unwrap();
    assert_eq!(accepted.tenant, "acme");

    let done = await_terminal(addr, "acme", &accepted.id);
    assert_eq!(done.state, "finished", "search failed: {:?}", done.error);
    assert!(done.committed > 0);
    assert!(done.best_loss.is_some());
    let version = done.published_version.expect("publish on finish");
    assert!(version >= 1);

    // Predict against the published slot.
    let rows = 8;
    let predict = serde_json::to_string(&flaml_server::PredictRequest {
        slot: "churn".into(),
        columns: vec![vec![0.5; rows], vec![0.25; rows]],
    })
    .unwrap();
    let (status, body) = http(addr, "POST", "/tenants/acme/predict", &predict);
    assert_eq!(status, 200, "predict failed: {body}");
    let response: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.rows, rows);
    assert_eq!(response.values.len(), rows * response.n_classes);
    assert_eq!(response.version, version);

    // Tenants are isolated: the same slot name elsewhere is 404.
    let (status, _) = http(addr, "POST", "/tenants/rival/predict", &predict);
    assert_eq!(status, 404);

    // Stats reflect the work and attribute it to the tenant.
    let (status, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(stats.contains("\"acme\""), "no tenant usage in {stats}");
    assert!(stats.contains("\"acme/churn\""), "no slot stats in {stats}");

    server.stop();
}

#[test]
fn admission_control_rejects_excess_fits_with_429() {
    let (server, addr) = start(scratch_root("admission"), 1);

    let request = serde_json::to_string(&fit_request("slot-a", 18, 5)).unwrap();
    let (status, body) = http(addr, "POST", "/tenants/t1/fit", &request);
    assert_eq!(status, 202, "first fit rejected: {body}");
    let first: FitAccepted = serde_json::from_str(&body).unwrap();

    // The bound is 1, the first search is in flight: reject.
    let (status, body) = http(addr, "POST", "/tenants/t2/fit", &request);
    assert_eq!(status, 429, "expected 429, got {status}: {body}");
    let rejected: Rejected = serde_json::from_str(&body).unwrap();
    assert_eq!(rejected.max_inflight, 1);
    assert!(rejected.inflight >= 1);

    let done = await_terminal(addr, "t1", &first.id);
    assert_eq!(done.state, "finished", "search failed: {:?}", done.error);

    // Rejections are counted in telemetry.
    let (_, stats) = http(addr, "GET", "/stats", "");
    assert!(
        stats.contains("\"serve_rejected\":1"),
        "rejection not counted in {stats}"
    );

    server.stop();
}

#[test]
fn bad_inputs_get_typed_errors() {
    let (server, addr) = start(scratch_root("validation"), 4);

    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    let (status, _) = http(addr, "POST", "/tenants/..%2Fetc/fit", "{}");
    assert_eq!(status, 400);

    let (status, body) = http(addr, "POST", "/tenants/acme/fit", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad JSON body"));

    let mut request = fit_request("slot", 4, 1);
    request.estimators = vec!["not-a-learner".into()];
    let (status, body) = http(
        addr,
        "POST",
        "/tenants/acme/fit",
        &serde_json::to_string(&request).unwrap(),
    );
    assert_eq!(status, 400);
    assert!(body.contains("not-a-learner"));

    // Predict against an empty slot is 404; rollback on it is 409.
    let predict = "{\"slot\":\"ghost\",\"columns\":[[1.0]]}";
    let (status, _) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/tenants/acme/slots/ghost/rollback", "");
    assert_eq!(status, 409);

    server.stop();
}

#[test]
fn predict_feature_mismatch_is_400_and_wrong_artifact_rejected() {
    let (server, addr) = start(scratch_root("features"), 4);

    let request = fit_request("m", 6, 9);
    let (status, body) = http(
        addr,
        "POST",
        "/tenants/acme/fit",
        &serde_json::to_string(&request).unwrap(),
    );
    assert_eq!(status, 202, "{body}");
    let accepted: FitAccepted = serde_json::from_str(&body).unwrap();
    let done = await_terminal(addr, "acme", &accepted.id);
    assert_eq!(done.state, "finished", "{:?}", done.error);

    // Model was trained on 2 features; send 3.
    let predict = "{\"slot\":\"m\",\"columns\":[[1.0],[1.0],[1.0]]}";
    let (status, body) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("feature column"), "{body}");

    // Publishing garbage bytes into a slot is a typed 400.
    let (status, body) = http(addr, "POST", "/tenants/acme/slots/m", "not an artifact");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("bad artifact"), "{body}");

    server.stop();
}
