//! End-to-end tests for the streaming endpoints: chunk ingestion,
//! drift-triggered promotion, serving the stream champion through
//! `/predict`, and restart recovery to a byte-identical trace.

mod common;

use common::{http, scratch_root};
use flaml_server::{
    DatasetPayload, PredictResponse, Server, ServerConfig, StreamChunkRequest, StreamOptions,
    StreamPushResponse, StreamStatusBody,
};
use flaml_synth::DriftStream;
use std::net::SocketAddr;
use std::path::Path;

/// The small fast drifting stream the online crate's own suites use:
/// 60-row chunks, 4 features, a concept shift every 6 chunks.
fn drift_stream() -> DriftStream {
    let mut s = DriftStream::new(11);
    s.rows = 60;
    s.features = 4;
    s.segment_chunks = 6;
    s.margin_noise = 0.15;
    s
}

/// Stream options tuned for test speed, matched to [`drift_stream`].
fn fast_options(seed: u64) -> StreamOptions {
    StreamOptions {
        seed: Some(seed),
        estimators: vec!["lr".into()],
        window_chunks: Some(4),
        holdout_chunks: Some(1),
        warmup_chunks: Some(2),
        drift_window: Some(3),
        drift_threshold: Some(0.1),
        promote_margin: Some(0.005),
        probation_chunks: Some(2),
        round_trials: Some(4),
        ..StreamOptions::default()
    }
}

fn start_server(root: &Path) -> (Server, SocketAddr) {
    let cfg = ServerConfig {
        root: root.to_path_buf(),
        ..ServerConfig::default()
    };
    Server::new(cfg)
        .expect("server builds")
        .start("127.0.0.1:0")
        .expect("server binds")
}

/// Pushes one chunk of `s` and returns the parsed response.
fn push(addr: SocketAddr, slot: &str, s: &DriftStream, i: usize) -> StreamPushResponse {
    let request = StreamChunkRequest {
        options: Some(fast_options(s.seed)),
        dataset: DatasetPayload::from_dataset(&s.chunk(i)),
    };
    let (status, body) = http(
        addr,
        "POST",
        &format!("/tenants/acme/stream/{slot}"),
        &serde_json::to_string(&request).unwrap(),
    );
    assert_eq!(status, 200, "chunk {i} rejected: {body}");
    serde_json::from_str(&body).expect("push response parses")
}

fn stream_status(addr: SocketAddr, slot: &str) -> StreamStatusBody {
    let (status, body) = http(
        addr,
        "GET",
        &format!("/tenants/acme/stream/{slot}/status"),
        "",
    );
    assert_eq!(status, 200, "status failed: {body}");
    serde_json::from_str(&body).expect("status body parses")
}

#[test]
fn stream_ingests_drifts_and_serves_the_champion() {
    let root = scratch_root("stream_e2e");
    let (server, addr) = start_server(&root);
    let s = drift_stream();

    // Chunk 0: stream created, no champion yet.
    let first = push(addr, "clicks", &s, 0);
    assert_eq!(first.chunk, 0);
    assert_eq!(first.era, 0);
    assert_eq!(first.champion_loss, None);

    // Two full segments: warmup promotes, the shift fires drift, and a
    // challenger takes over.
    for i in 1..2 * s.segment_chunks {
        push(addr, "clicks", &s, i);
    }
    let status = stream_status(addr, "clicks");
    assert_eq!(status.chunks, 2 * s.segment_chunks);
    assert!(status.drift_events >= 1, "no drift detected: {status:?}");
    assert!(
        status.promotions >= 2,
        "no post-drift promotion: {status:?}"
    );
    assert!(status.era >= 2, "champion never replaced: {status:?}");

    // The stream champion serves through the ordinary predict route.
    let probe = s.chunk(0);
    let predict = serde_json::to_string(&flaml_server::PredictRequest {
        slot: "clicks".into(),
        columns: probe.columns().to_vec(),
    })
    .unwrap();
    let (code, body) = http(addr, "POST", "/tenants/acme/predict", &predict);
    assert_eq!(code, 200, "predict from stream slot failed: {body}");
    let response: PredictResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(response.rows, probe.n_rows());
    assert!(response.version >= 1);

    // Redelivering the last chunk is an idempotent no-op.
    let dup = push(addr, "clicks", &s, 2 * s.segment_chunks - 1);
    assert!(dup.duplicate, "redelivery must dedupe: {dup:?}");

    // A chunk with the wrong schema is a 400 and does not wedge.
    let mut wide = drift_stream();
    wide.features = s.features + 2;
    let bad = StreamChunkRequest {
        options: None,
        dataset: DatasetPayload::from_dataset(&wide.chunk(0)),
    };
    let (code, body) = http(
        addr,
        "POST",
        "/tenants/acme/stream/clicks",
        &serde_json::to_string(&bad).unwrap(),
    );
    assert_eq!(code, 400, "schema mismatch must be a 400: {body}");
    push(addr, "clicks", &s, 2 * s.segment_chunks);

    // Unknown stream and invalid slot names are typed errors.
    let (code, _) = http(addr, "GET", "/tenants/acme/stream/nope/status", "");
    assert_eq!(code, 404);
    let (code, _) = http(addr, "GET", "/tenants/acme/stream/..%2Fx/status", "");
    assert_eq!(code, 400);

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stream_survives_restart_with_a_byte_identical_trace() {
    let s = drift_stream();
    let n = 2 * s.segment_chunks;

    // Uninterrupted reference: one server ingests the whole stream.
    let ref_root = scratch_root("stream_ref");
    let (server, addr) = start_server(&ref_root);
    for i in 0..n {
        push(addr, "clicks", &s, i);
    }
    let reference_status = stream_status(addr, "clicks");
    server.stop();
    let journal = |root: &Path| {
        std::fs::read(
            root.join("acme")
                .join("streams")
                .join("clicks")
                .join("online.jsonl"),
        )
        .expect("stream journal exists")
    };
    let reference = journal(&ref_root);

    // Killed-and-restarted run: half the stream, stop (equivalent to a
    // crash, by design), then a fresh server over the same root.
    let root = scratch_root("stream_restart");
    let (server, addr) = start_server(&root);
    for i in 0..n / 2 {
        push(addr, "clicks", &s, i);
    }
    server.stop();
    // Let the accept loop wind down before a new process takes over.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let (server, addr) = start_server(&root);
    // Recovery reopened the stream: status works and the champion
    // serves again before any new chunk arrives.
    let recovered = stream_status(addr, "clicks");
    assert_eq!(recovered.chunks, n / 2, "recovery lost or invented chunks");
    assert!(recovered.era >= 1, "recovered stream has no champion");
    let probe = s.chunk(0);
    let predict = serde_json::to_string(&flaml_server::PredictRequest {
        slot: "clicks".into(),
        columns: probe.columns().to_vec(),
    })
    .unwrap();
    let (code, body) = http(addr, "POST", "/tenants/acme/predict", &predict);
    assert_eq!(code, 200, "recovered champion must serve: {body}");

    for i in n / 2..n {
        push(addr, "clicks", &s, i);
    }
    let final_status = stream_status(addr, "clicks");
    assert_eq!(
        final_status, reference_status,
        "restart changed the stream's counters"
    );
    assert_eq!(
        String::from_utf8(journal(&root)).unwrap(),
        String::from_utf8(reference).unwrap(),
        "restart changed the promotion trace"
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&ref_root);
}
