//! Disk-fault chaos: the durability contract of the whole fit → journal
//! → artifact → publish pipeline, enforced by enumerating injected I/O
//! faults.
//!
//! The gate test is the crashpoint sweep: a fault-free chaos run counts
//! every mutating storage op the lifecycle issues, then the server is
//! re-run once per op with a simulated crash at exactly that op. After
//! each crash a restart against the real disk must converge to the same
//! terminal state — a finished search whose journal is canonically
//! byte-identical to a never-interrupted reference run — or a clean,
//! typed absence (the client saw an error and no durable intent
//! exists). Never a wedge, never a torn file under a final name.

mod common;

use common::{await_terminal, http, payload, scratch_root};
use flaml_core::{
    ArtifactFormat, BlobModel, BlobOptions, ChaosStorage, IoFaultPlan, Journal, SearchHandle,
};
use flaml_server::{FitRequest, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The smallest search that exercises the full durable pipeline:
/// sidecar, journal create + per-trial commits, completion artifact,
/// slot artifact.
fn tiny_fit_request(slot: &str) -> FitRequest {
    FitRequest {
        slot: slot.into(),
        time_budget: 5.0,
        max_trials: Some(3),
        seed: 7,
        estimators: vec!["lr".into()],
        sample_size_init: Some(100),
        slice_trials: Some(4),
        dataset: payload(120, 11),
    }
}

fn config(root: PathBuf, storage: Option<Arc<ChaosStorage>>) -> ServerConfig {
    ServerConfig {
        root,
        max_inflight: 4,
        batch_rows: 64,
        serve_workers: 1,
        fit_workers: 1,
        storage: match storage {
            Some(chaos) => chaos,
            None => flaml_core::disk(),
        },
        ..ServerConfig::default()
    }
}

fn start(cfg: ServerConfig) -> (Server, SocketAddr) {
    Server::new(cfg)
        .expect("server init")
        .start("127.0.0.1:0")
        .expect("server start")
}

/// Reference journal bytes for `request`, produced by an uninterrupted
/// run on the real disk.
fn reference_bytes(request: &FitRequest, tag: &str) -> String {
    let path = std::env::temp_dir().join(format!(
        "flaml_durability_ref_{tag}_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let data = request.to_dataset().expect("dataset");
    request
        .to_automl()
        .expect("automl")
        .journal(&path)
        .fit(&data)
        .expect("reference fit");
    let bytes = Journal::read(&path)
        .expect("reference journal")
        .canonical_bytes();
    let _ = std::fs::remove_file(&path);
    bytes
}

fn stats_counter(addr: SocketAddr, field: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200, "stats failed: {body}");
    // The vendored serde_json has no dynamic Value; scrape the one
    // integer field out of the flat stats body instead.
    let key = format!("\"{field}\":");
    let tail = body
        .split(&key)
        .nth(1)
        .unwrap_or_else(|| panic!("stats field {field} missing: {body}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("stats field {field} not an integer: {body}"))
}

#[test]
fn crashpoint_sweep_recovers_byte_identically_at_every_op() {
    let request = tiny_fit_request("sweep");
    let reference = reference_bytes(&request, "sweep");
    let body = serde_json::to_string(&request).expect("serialize request");

    // Fault-free chaos run: count every mutating storage op in the
    // accepted-to-published lifecycle.
    let total = {
        let root = scratch_root("sweep_clean");
        let chaos = Arc::new(ChaosStorage::new(flaml_core::disk(), IoFaultPlan::new(1)));
        let (server, addr) = start(config(root.clone(), Some(Arc::clone(&chaos))));
        let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
        assert_eq!(status, 202, "{resp}");
        let done = await_terminal(addr, "acme", "s0000");
        assert_eq!(done.state, "finished", "{:?}", done.error);
        server.stop();
        let resumed = Journal::read(root.join("acme/s0000.jsonl"))
            .expect("journal")
            .canonical_bytes();
        assert_eq!(resumed, reference, "fault-free chaos run diverged");
        chaos.ops_issued()
    };
    assert!(
        total >= 20,
        "expected the lifecycle to issue many storage ops, got {total}"
    );

    for k in 0..total {
        let root = scratch_root(&format!("sweep_{k}"));
        let chaos = Arc::new(ChaosStorage::new(
            flaml_core::disk(),
            IoFaultPlan::new(1).crash_at(k),
        ));
        let (server, addr) = start(config(root.clone(), Some(Arc::clone(&chaos))));
        let (status, _resp) = http(addr, "POST", "/tenants/acme/fit", &body);
        let admitted = status == 202;
        if admitted {
            // The search must reach a terminal state even though the
            // storage died underneath it — failed is fine, wedged is not.
            let done = await_terminal(addr, "acme", "s0000");
            assert!(
                done.state == "finished" || done.state == "failed",
                "op {k}: non-terminal state {}",
                done.state
            );
        } else {
            assert_eq!(status, 500, "op {k}: unexpected admission status");
        }
        server.stop();

        // Restart on the real disk: recovery must converge to the
        // reference run, re-admitting from whatever survived.
        let (server, addr) = start(config(root.clone(), None));
        let (status, _) = http(addr, "GET", "/tenants/acme/searches/s0000", "");
        if status == 404 {
            // The crash preceded the durable sidecar: the client saw an
            // error and no intent survived. Resubmit and finish.
            let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
            assert_eq!(status, 202, "op {k}: resubmit failed: {resp}");
        }
        let done = await_terminal(addr, "acme", "s0000");
        assert_eq!(
            done.state, "finished",
            "op {k}: recovery did not finish: {:?}",
            done.error
        );
        let resumed = Journal::read(root.join("acme/s0000.jsonl"))
            .expect("journal parses after recovery")
            .canonical_bytes();
        assert_eq!(resumed, reference, "op {k}: journal diverged after crash");
        // The published winner serves.
        let predict = "{\"slot\":\"sweep\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
        let (status, resp) = http(addr, "POST", "/tenants/acme/predict", predict);
        assert_eq!(status, 200, "op {k}: predict after recovery failed: {resp}");
        server.stop();
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn torn_journal_tail_resumes_byte_identically_at_every_offset() {
    let request = tiny_fit_request("torn");
    let reference = reference_bytes(&request, "torn");
    let data = request.to_dataset().expect("dataset");

    // A pristine finished journal to tear.
    let pristine = std::env::temp_dir().join(format!(
        "flaml_durability_torn_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&pristine);
    request
        .to_automl()
        .expect("automl")
        .journal(&pristine)
        .fit(&data)
        .expect("pristine fit");
    let bytes = std::fs::read(&pristine).expect("journal bytes");
    let last_record_start = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("journal has records");

    // Tear the final record at every byte offset — from losing it
    // whole to keeping all but its newline — and resume each time.
    for cut in last_record_start..bytes.len() {
        let torn = std::env::temp_dir().join(format!(
            "flaml_durability_torn_{}_{cut}.jsonl",
            std::process::id()
        ));
        std::fs::write(&torn, &bytes[..cut]).expect("write torn journal");
        let mut handle = SearchHandle::attach(request.to_automl().expect("automl"), &torn)
            .unwrap_or_else(|e| panic!("attach at cut {cut} failed: {e}"));
        handle
            .run_to_end(&data, 4)
            .unwrap_or_else(|e| panic!("resume at cut {cut} failed: {e}"));
        let resumed = Journal::read(&torn)
            .expect("torn journal parses")
            .canonical_bytes();
        assert_eq!(resumed, reference, "cut {cut}: resumed journal diverged");
        let _ = std::fs::remove_file(&torn);
    }
    let _ = std::fs::remove_file(&pristine);
}

#[test]
fn torn_sidecar_is_quarantined_and_server_keeps_serving() {
    let request = tiny_fit_request("sidecar");
    let sidecar_bytes = serde_json::to_string(&request)
        .expect("serialize")
        .into_bytes();

    // Every proper prefix of a JSON document is unreadable; sweep a few
    // representative tears including empty and almost-complete.
    let cuts = [0, 1, sidecar_bytes.len() / 2, sidecar_bytes.len() - 1];
    for cut in cuts {
        let root = scratch_root(&format!("sidecar_{cut}"));
        let tenant_dir = root.join("acme");
        std::fs::create_dir_all(&tenant_dir).expect("tenant dir");
        std::fs::write(tenant_dir.join("s0000.request.json"), &sidecar_bytes[..cut])
            .expect("torn sidecar");

        let (server, addr) = start(config(root.clone(), None));
        let done = await_terminal(addr, "acme", "s0000");
        assert_eq!(done.state, "failed", "cut {cut}");
        assert!(
            done.error.as_deref().unwrap_or("").contains("quarantined"),
            "cut {cut}: error should mention quarantine: {:?}",
            done.error
        );
        assert!(
            tenant_dir.join("s0000.request.json.corrupt").exists(),
            "cut {cut}: sidecar not quarantined"
        );
        assert!(
            !tenant_dir.join("s0000.request.json").exists(),
            "cut {cut}: corrupt sidecar left in place"
        );
        assert!(stats_counter(addr, "storage_quarantined") >= 1);

        // The loss is contained: new work on the same server succeeds.
        let body = serde_json::to_string(&tiny_fit_request("fresh")).expect("serialize");
        let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
        assert_eq!(status, 202, "cut {cut}: {resp}");
        let done = await_terminal(addr, "acme", "s0001");
        assert_eq!(done.state, "finished", "cut {cut}: {:?}", done.error);
        server.stop();
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn corrupt_completion_artifact_is_quarantined_and_rederived() {
    let request = tiny_fit_request("artifact");
    let reference = reference_bytes(&request, "artifact");
    let body = serde_json::to_string(&request).expect("serialize");

    // Run a search to completion to get a real completion artifact.
    let root = scratch_root("artifact");
    let (server, addr) = start(config(root.clone(), None));
    let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
    assert_eq!(status, 202, "{resp}");
    let done = await_terminal(addr, "acme", "s0000");
    assert_eq!(done.state, "finished", "{:?}", done.error);
    server.stop();

    let artifact = root.join("acme/s0000.artifact.json");
    let pristine = std::fs::read(&artifact).expect("artifact bytes");

    // Tear the artifact at a spread of offsets; every tear must be
    // quarantined on restart and the journal must re-derive the result.
    let mut cuts: Vec<usize> = (0..pristine.len()).step_by(97).collect();
    cuts.push(pristine.len() - 1);
    for cut in cuts {
        std::fs::write(&artifact, &pristine[..cut]).expect("torn artifact");
        let _ = std::fs::remove_file(root.join("acme/s0000.failed"));

        let (server, addr) = start(config(root.clone(), None));
        let done = await_terminal(addr, "acme", "s0000");
        assert_eq!(done.state, "finished", "cut {cut}: {:?}", done.error);
        assert!(stats_counter(addr, "storage_quarantined") >= 1, "cut {cut}");
        // The re-derived artifact is complete and loads.
        assert!(
            flaml_core::CompiledModel::load(&artifact).is_ok(),
            "cut {cut}: re-derived artifact unreadable"
        );
        let resumed = Journal::read(root.join("acme/s0000.jsonl"))
            .expect("journal")
            .canonical_bytes();
        assert_eq!(resumed, reference, "cut {cut}: journal changed");
        let predict = "{\"slot\":\"artifact\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
        let (status, resp) = http(addr, "POST", "/tenants/acme/predict", predict);
        assert_eq!(status, 200, "cut {cut}: {resp}");
        server.stop();
        // Reset for the next tear: drop the quarantine file.
        let _ = std::fs::remove_file(root.join("acme/s0000.artifact.json.corrupt"));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_slot_artifact_is_quarantined_not_served() {
    let root = scratch_root("slot_corrupt");
    let slots = root.join("acme/slots");
    std::fs::create_dir_all(&slots).expect("slots dir");
    std::fs::write(
        slots.join("direct.artifact.json"),
        b"{\"not\":\"an artifact\"",
    )
    .expect("corrupt slot");

    let (server, addr) = start(config(root.clone(), None));
    let predict = "{\"slot\":\"direct\",\"columns\":[[0.5,0.1]]}";
    let (status, _) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 404, "corrupt slot must not serve");
    assert!(slots.join("direct.artifact.json.corrupt").exists());
    assert!(!slots.join("direct.artifact.json").exists());
    assert!(stats_counter(addr, "storage_quarantined") >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn enospc_on_admission_returns_507_and_counts_the_fault() {
    let root = scratch_root("enospc_admit");
    let chaos = Arc::new(ChaosStorage::new(
        flaml_core::disk(),
        IoFaultPlan::new(9).enospc(1.0),
    ));
    let (server, addr) = start(config(root.clone(), Some(chaos)));
    let body = serde_json::to_string(&tiny_fit_request("full")).expect("serialize");
    let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
    assert_eq!(status, 507, "expected Insufficient Storage: {resp}");
    assert!(resp.contains("no space"), "untyped ENOSPC body: {resp}");
    // The server survives a full disk: health and stats still answer.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(stats_counter(addr, "storage_faults") >= 1);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn enospc_mid_search_fails_typed_with_parseable_journal() {
    // Pick a seed whose first injected ENOSPC lands after admission
    // (the sidecar publish is the first ~7 mutating ops) so the fault
    // strikes the journal/artifact phase of a running search. The scan
    // is over the plan's pure decision function, so it is deterministic.
    let plan = (0..100_000u64)
        .map(|seed| IoFaultPlan::new(seed).enospc(0.25))
        .find(|plan| {
            let first = (0..200).find(|&op| plan.decide(op).is_some());
            matches!(first, Some(op) if (10..=24).contains(&op))
        })
        .expect("a seed with a mid-search first fault exists");

    let root = scratch_root("enospc_mid");
    let chaos = Arc::new(ChaosStorage::new(flaml_core::disk(), plan));
    let (server, addr) = start(config(root.clone(), Some(chaos)));
    let body = serde_json::to_string(&tiny_fit_request("mid")).expect("serialize");
    let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
    assert_eq!(status, 202, "admission should precede the fault: {resp}");
    let done = await_terminal(addr, "acme", "s0000");
    assert_eq!(done.state, "failed", "search should fail typed");
    assert!(
        done.error.as_deref().unwrap_or("").contains("no space"),
        "untyped mid-search ENOSPC: {:?}",
        done.error
    );
    // The fault was counted and the server keeps answering.
    assert!(stats_counter(addr, "storage_faults") >= 1);
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    // The journal never holds torn bytes: if it exists, it parses.
    let journal = root.join("acme/s0000.jsonl");
    if journal.exists() {
        Journal::read(&journal).expect("journal truncated to committed prefix");
    }
    server.stop();

    // After the disk recovers (plain storage), restart converges to a
    // terminal state: finished via journal re-admission, or failed with
    // the persisted typed error if the failure marker survived.
    let (server, addr) = start(config(root.clone(), None));
    let done = await_terminal(addr, "acme", "s0000");
    match done.state.as_str() {
        "finished" => {}
        "failed" => assert!(done.error.is_some(), "persisted failure lost its message"),
        other => panic!("non-terminal state after restart: {other}"),
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stalled_client_gets_408_and_is_counted() {
    let root = scratch_root("timeout");
    let mut cfg = config(root.clone(), None);
    cfg.socket_timeout = Some(Duration::from_millis(150));
    let (server, addr) = start(cfg);

    // Send half a request and stall: the server must time the socket
    // out, answer 408, and drop the connection.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client timeout");
    stream
        .write_all(b"POST /tenants/acme/fit HTTP/1.1\r\ncontent-length: 100\r\n")
        .expect("partial request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read 408");
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408, got: {response}"
    );
    assert!(stats_counter(addr, "serve_timed_out") >= 1);
    // A well-behaved client is unaffected.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// Extracts the served-model fingerprint from a `/predict` body.
fn predict_fingerprint(body: &str) -> u64 {
    body.split("\"fingerprint\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no fingerprint in predict body: {body}"))
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("fingerprint parses")
}

#[test]
fn blob_save_crashpoint_sweep_never_tears_the_final_name() {
    // A real fitted model to publish as a binary blob.
    let request = tiny_fit_request("blob");
    let data = request.to_dataset().expect("dataset");
    let result = request
        .to_automl()
        .expect("automl")
        .fit(&data)
        .expect("fit");
    let compiled = result.compile().expect("compile");

    let dir = scratch_root("blob_save_sweep");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let reference_path = dir.join("ref.artifact.blob");
    let fp = flaml_core::save_blob(&compiled, &reference_path, BlobOptions::tuned())
        .expect("reference save");
    let reference = std::fs::read(&reference_path).expect("reference bytes");

    // Count the mutating storage ops a fault-free blob save issues.
    let total = {
        let chaos = Arc::new(ChaosStorage::new(flaml_core::disk(), IoFaultPlan::new(1)));
        flaml_core::save_blob_with(
            chaos.as_ref(),
            &dir.join("clean.artifact.blob"),
            &compiled,
            BlobOptions::tuned(),
        )
        .expect("clean chaos save");
        chaos.ops_issued()
    };
    assert!(
        total >= 3,
        "blob save should issue several ops, got {total}"
    );

    // Crash at every op: the final name either never appears, or holds
    // the complete byte-identical blob — never a torn prefix.
    for k in 0..total {
        let path = dir.join(format!("crash_{k}.artifact.blob"));
        let chaos = Arc::new(ChaosStorage::new(
            flaml_core::disk(),
            IoFaultPlan::new(1).crash_at(k),
        ));
        let saved =
            flaml_core::save_blob_with(chaos.as_ref(), &path, &compiled, BlobOptions::tuned());
        if path.exists() {
            assert_eq!(
                std::fs::read(&path).expect("blob bytes"),
                reference,
                "op {k}: bytes under the final name are not the complete blob"
            );
            let blob = BlobModel::open(&path)
                .unwrap_or_else(|e| panic!("op {k}: blob under final name rejected: {e}"));
            assert_eq!(blob.fingerprint(), fp, "op {k}");
        } else {
            assert!(
                saved.is_err(),
                "op {k}: save claimed success but the final name is absent"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_blob_completion_artifact_is_quarantined_and_rederived() {
    let request = tiny_fit_request("blobart");
    let reference = reference_bytes(&request, "blobart");
    let body = serde_json::to_string(&request).expect("serialize");

    let blob_cfg = |root: PathBuf| {
        let mut cfg = config(root, None);
        cfg.artifact_format = ArtifactFormat::Blob;
        cfg
    };

    // Run a search to completion under the blob format.
    let root = scratch_root("blob_artifact");
    let (server, addr) = start(blob_cfg(root.clone()));
    let (status, resp) = http(addr, "POST", "/tenants/acme/fit", &body);
    assert_eq!(status, 202, "{resp}");
    let done = await_terminal(addr, "acme", "s0000");
    assert_eq!(done.state, "finished", "{:?}", done.error);
    server.stop();

    let artifact = root.join("acme/s0000.artifact.blob");
    assert!(artifact.exists(), "blob completion artifact missing");
    assert!(
        !root.join("acme/s0000.artifact.json").exists(),
        "json sibling should not exist under the blob format"
    );
    assert!(
        root.join("acme/slots/blobart.artifact.blob").exists(),
        "blob slot artifact missing"
    );
    let pristine = std::fs::read(&artifact).expect("artifact bytes");

    // Truncations (including an empty file and a cut inside the
    // header) plus a mid-payload byte flip: every corruption must be
    // quarantined on restart and the journal must re-derive the blob.
    let mut corruptions: Vec<Vec<u8>> = [0, 1, 63, 64, pristine.len() / 2, pristine.len() - 1]
        .iter()
        .map(|&cut| pristine[..cut].to_vec())
        .collect();
    let mut flipped = pristine.clone();
    flipped[pristine.len() / 3] ^= 0x40;
    corruptions.push(flipped);
    for (i, bytes) in corruptions.iter().enumerate() {
        std::fs::write(&artifact, bytes).expect("corrupt artifact");
        let _ = std::fs::remove_file(root.join("acme/s0000.failed"));

        let (server, addr) = start(blob_cfg(root.clone()));
        let done = await_terminal(addr, "acme", "s0000");
        assert_eq!(done.state, "finished", "corruption {i}: {:?}", done.error);
        assert!(
            stats_counter(addr, "storage_quarantined") >= 1,
            "corruption {i}"
        );
        // The re-derived blob is complete and validates.
        assert!(
            BlobModel::open(&artifact).is_ok(),
            "corruption {i}: re-derived blob unreadable"
        );
        let resumed = Journal::read(root.join("acme/s0000.jsonl"))
            .expect("journal")
            .canonical_bytes();
        assert_eq!(resumed, reference, "corruption {i}: journal changed");
        let predict = "{\"slot\":\"blobart\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
        let (status, resp) = http(addr, "POST", "/tenants/acme/predict", predict);
        assert_eq!(status, 200, "corruption {i}: {resp}");
        server.stop();
        let _ = std::fs::remove_file(root.join("acme/s0000.artifact.blob.corrupt"));
    }

    // A restart in the default JSON configuration still serves the
    // blob artifacts: readers are format-agnostic.
    let (server, addr) = start(config(root.clone(), None));
    let predict = "{\"slot\":\"blobart\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
    let (status, resp) = http(addr, "POST", "/tenants/acme/predict", predict);
    assert_eq!(status, 200, "{resp}");
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn slot_recovery_prefers_blob_and_falls_back_to_json_when_corrupt() {
    // Two distinct models so the served fingerprint identifies which
    // sibling recovery picked.
    let fit = |seed: u64| {
        let mut request = tiny_fit_request("dual");
        request.seed = seed;
        request.dataset = payload(120, seed);
        let data = request.to_dataset().expect("dataset");
        request
            .to_automl()
            .expect("automl")
            .fit(&data)
            .expect("fit")
            .compile()
            .expect("compile")
    };
    let model_a = fit(3);
    let model_b = fit(41);

    let probe = "{\"slot\":\"dual\",\"columns\":[[0.5,0.1],[0.2,0.9]]}";
    let served_fp = |root: PathBuf| {
        let (server, addr) = start(config(root, None));
        let (status, resp) = http(addr, "POST", "/tenants/acme/predict", probe);
        assert_eq!(status, 200, "{resp}");
        let fp = predict_fingerprint(&resp);
        server.stop();
        fp
    };

    // Baseline fingerprints from single-format roots. The blob uses
    // the default layout so its recovered CompiledModel is identical
    // to `model_a` slab-for-slab.
    let root_a = scratch_root("dual_a");
    flaml_core::save_blob(
        &model_a,
        root_a.join("acme/slots/dual.artifact.blob"),
        flaml_core::BlobOptions::default(),
    )
    .expect("blob save");
    let fp_a = served_fp(root_a.clone());

    let root_b = scratch_root("dual_b");
    model_b
        .save(root_b.join("acme/slots/dual.artifact.json"))
        .expect("json save");
    let fp_b = served_fp(root_b.clone());
    assert_ne!(
        fp_a, fp_b,
        "distinct models should have distinct fingerprints"
    );

    // Both siblings present: the blob (model A) wins.
    let root = scratch_root("dual_both");
    let slots = root.join("acme/slots");
    flaml_core::save_blob(
        &model_a,
        slots.join("dual.artifact.blob"),
        flaml_core::BlobOptions::default(),
    )
    .expect("blob save");
    model_b
        .save(slots.join("dual.artifact.json"))
        .expect("json save");
    assert_eq!(
        served_fp(root.clone()),
        fp_a,
        "blob sibling must be preferred"
    );

    // Corrupt the blob: recovery quarantines it and serves the JSON.
    let blob_path = slots.join("dual.artifact.blob");
    let bytes = std::fs::read(&blob_path).expect("blob bytes");
    std::fs::write(&blob_path, &bytes[..bytes.len() / 2]).expect("tear blob");
    let (server, addr) = start(config(root.clone(), None));
    let (status, resp) = http(addr, "POST", "/tenants/acme/predict", probe);
    assert_eq!(status, 200, "{resp}");
    assert_eq!(
        predict_fingerprint(&resp),
        fp_b,
        "corrupt blob must fall back to the JSON sibling"
    );
    assert!(slots.join("dual.artifact.blob.corrupt").exists());
    assert!(stats_counter(addr, "storage_quarantined") >= 1);
    server.stop();

    for r in [root_a, root_b, root] {
        let _ = std::fs::remove_dir_all(&r);
    }
}
