//! Shared helpers for the server integration tests: a tiny HTTP
//! client, a deterministic dataset generator, and scratch roots.

// Each test binary compiles its own copy; not every binary uses every
// helper.
#![allow(dead_code)]

use flaml_server::{DatasetPayload, FitRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// One-shot HTTP request; returns `(status, body)`.
pub fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("body");
    (status, body)
}

/// Deterministic binary-classification payload.
pub fn payload(n: usize, seed: u64) -> DatasetPayload {
    let mut rng = StdRng::seed_from_u64(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| f64::from(x0[i] * 1.5 + (x1[i] - 0.4).powi(2) * 3.0 > 0.9))
        .collect();
    DatasetPayload {
        name: "server-test".into(),
        task: "binary".into(),
        columns: vec![x0, x1],
        target: y,
    }
}

/// A standard small search request.
pub fn fit_request(slot: &str, max_trials: usize, seed: u64) -> FitRequest {
    FitRequest {
        slot: slot.into(),
        time_budget: 5.0,
        max_trials: Some(max_trials),
        seed,
        estimators: vec!["lightgbm".into(), "rf".into(), "lr".into()],
        sample_size_init: Some(100),
        slice_trials: Some(4),
        dataset: payload(400, 11),
    }
}

/// Fresh scratch directory for a server state root.
pub fn scratch_root(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("flaml_server_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

/// Polls a search status until it leaves `queued`/`running`; returns
/// the final status body. Panics after ~60s.
pub fn await_terminal(addr: SocketAddr, tenant: &str, id: &str) -> flaml_server::SearchStatus {
    for _ in 0..600 {
        let (status, body) = http(addr, "GET", &format!("/tenants/{tenant}/searches/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {body}");
        let parsed: flaml_server::SearchStatus =
            serde_json::from_str(&body).expect("status body parses");
        if parsed.state == "finished" || parsed.state == "failed" {
            return parsed;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    panic!("search {tenant}/{id} did not reach a terminal state");
}
