//! The determinism contract of the promotion trace: byte-identical
//! journals across worker counts, across kill-and-reopen at every chunk
//! boundary, and across a crashpoint sweep that kills the session at
//! every mutating storage op (mirroring the server's durability suite).

mod common;

use common::{fast_config, runtime, scratch, stream};
use flaml_core::{ChaosStorage, IoFaultPlan, Journal};
use flaml_online::{LogError, OnlineError, OnlineSession};
use std::sync::Arc;

const CHUNKS: usize = 12;

/// Pushes chunks `0..n` of the standard test stream into a fresh
/// session at `dir` and returns the final journal bytes.
fn run_reference(dir: &std::path::Path, workers: usize, n: usize) -> String {
    let s = stream(11);
    let cfg = fast_config(&s);
    let mut session =
        OnlineSession::create(dir, cfg, runtime(flaml_core::disk(), workers)).unwrap();
    for i in 0..n {
        session.push_chunk(&s.chunk(i)).unwrap();
    }
    let status = session.status();
    assert!(
        status.promotions >= 2 && status.drift_events >= 1,
        "reference run too quiet to be a meaningful gate: {status:?}"
    );
    String::from_utf8(session.journal_bytes().unwrap()).unwrap()
}

#[test]
fn trace_is_byte_identical_across_worker_counts() {
    let dir1 = scratch("workers1");
    let dir4 = scratch("workers4");
    let one = run_reference(&dir1, 1, CHUNKS);
    let four = run_reference(&dir4, 4, CHUNKS);
    assert_eq!(
        one, four,
        "promotion trace depends on worker count — virtual clock broken"
    );

    // The challenger search journals are deterministic too.
    for entry in std::fs::read_dir(dir1.join("rounds")).unwrap() {
        let name = entry.unwrap().file_name();
        let a = Journal::read(dir1.join("rounds").join(&name))
            .unwrap()
            .canonical_bytes();
        let b = Journal::read(dir4.join("rounds").join(&name))
            .unwrap()
            .canonical_bytes();
        assert_eq!(a, b, "round journal {name:?} diverged across workers");
    }
}

#[test]
fn reopen_between_every_chunk_matches_uninterrupted() {
    let reference = run_reference(&scratch("reopen_ref"), 1, CHUNKS);

    let dir = scratch("reopen");
    let s = stream(11);
    let cfg = fast_config(&s);
    drop(OnlineSession::create(&dir, cfg, runtime(flaml_core::disk(), 1)).unwrap());
    for i in 0..CHUNKS {
        // A brand-new process per chunk: open, push, drop.
        let mut session = OnlineSession::open(&dir, runtime(flaml_core::disk(), 1)).unwrap();
        assert_eq!(session.status().chunks, i, "reopen lost or invented chunks");
        session.push_chunk(&s.chunk(i)).unwrap();
    }
    let session = OnlineSession::open(&dir, runtime(flaml_core::disk(), 1)).unwrap();
    assert_eq!(
        String::from_utf8(session.journal_bytes().unwrap()).unwrap(),
        reference,
        "reopening between chunks changed the trace"
    );
}

#[test]
fn crashpoint_sweep_recovers_byte_identically_at_every_op() {
    // Shorter stream than the other suites: the sweep replays it once
    // per mutating storage op.
    let n = 8;
    let s = stream(11);
    let cfg = fast_config(&s);

    let reference = {
        let dir = scratch("sweep_ref");
        let mut session =
            OnlineSession::create(&dir, cfg.clone(), runtime(flaml_core::disk(), 1)).unwrap();
        for i in 0..n {
            session.push_chunk(&s.chunk(i)).unwrap();
        }
        let status = session.status();
        assert!(
            status.promotions >= 2,
            "sweep stream must exercise warmup + drift promotion: {status:?}"
        );
        String::from_utf8(session.journal_bytes().unwrap()).unwrap()
    };

    // Fault-free chaos run: count every mutating storage op the stream
    // lifecycle issues.
    let total = {
        let dir = scratch("sweep_count");
        let chaos = Arc::new(ChaosStorage::new(flaml_core::disk(), IoFaultPlan::new(1)));
        let mut session = OnlineSession::create(
            &dir,
            cfg.clone(),
            runtime(Arc::clone(&chaos) as Arc<dyn flaml_core::Storage>, 1),
        )
        .unwrap();
        for i in 0..n {
            session.push_chunk(&s.chunk(i)).unwrap();
        }
        assert_eq!(
            String::from_utf8(session.journal_bytes().unwrap()).unwrap(),
            reference
        );
        chaos.ops_issued()
    };
    assert!(
        total >= 30,
        "expected the stream lifecycle to issue many storage ops, got {total}"
    );

    for k in 0..total {
        let dir = scratch(&format!("sweep_{k}"));
        let chaos = Arc::new(ChaosStorage::new(
            flaml_core::disk(),
            IoFaultPlan::new(1).crash_at(k),
        ));
        let crashed = (|| -> Result<(), OnlineError> {
            let mut session = OnlineSession::create(
                &dir,
                cfg.clone(),
                runtime(Arc::clone(&chaos) as Arc<dyn flaml_core::Storage>, 1),
            )?;
            for i in 0..n {
                session.push_chunk(&s.chunk(i))?;
            }
            Ok(())
        })()
        .is_err();
        assert!(crashed, "op {k}: the injected crash did not surface");

        // Recover on the real disk: open (or recreate, if the crash
        // preceded the durable header) and push whatever is missing.
        let mut session = match OnlineSession::open(&dir, runtime(flaml_core::disk(), 1)) {
            Ok(session) => session,
            Err(OnlineError::Journal(LogError::Missing)) => {
                OnlineSession::create(&dir, cfg.clone(), runtime(flaml_core::disk(), 1))
                    .unwrap_or_else(|e| panic!("op {k}: recreate failed: {e}"))
            }
            Err(e) => panic!("op {k}: reopen failed: {e}"),
        };
        let done = session.status().chunks;
        assert!(done <= n, "op {k}: recovery invented chunks");
        for i in done..n {
            session
                .push_chunk(&s.chunk(i))
                .unwrap_or_else(|e| panic!("op {k}: chunk {i} failed after recovery: {e}"));
        }
        assert_eq!(
            String::from_utf8(session.journal_bytes().unwrap()).unwrap(),
            reference,
            "op {k}: promotion trace diverged after crash + recovery"
        );
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
