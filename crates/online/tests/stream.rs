//! End-to-end behavior of the online loop on a drifting stream:
//! warmup, drift-triggered promotion, probation, and idempotency.

mod common;

use common::{fast_config, scratch, stream};
use flaml_online::{kind, ChunkOutcome, OnlineError, OnlineRuntime, OnlineSession};

#[test]
fn warmup_trains_a_first_champion() {
    let dir = scratch("warmup");
    let s = stream(11);
    let cfg = fast_config(&s);
    let mut session = OnlineSession::create(&dir, cfg.clone(), OnlineRuntime::local()).unwrap();

    // Before warmup fills the window there is no champion and no eval.
    for i in 0..cfg.warmup_chunks - 1 {
        match session.push_chunk(&s.chunk(i)).unwrap() {
            ChunkOutcome::Processed {
                champion_loss,
                round,
                ..
            } => {
                assert_eq!(champion_loss, None, "chunk {i}: no champion yet");
                assert!(round.is_none(), "chunk {i}: too early for a round");
            }
            other => panic!("chunk {i}: unexpected outcome {other:?}"),
        }
    }

    // The warmup chunk triggers the first round, which promotes.
    match session.push_chunk(&s.chunk(cfg.warmup_chunks - 1)).unwrap() {
        ChunkOutcome::Processed { round, .. } => {
            let round = round.expect("warmup round runs");
            assert_eq!(round.reason, "warmup");
            assert!(round.promoted, "warmup always promotes a viable model");
            assert_eq!(round.champion_loss, f64::INFINITY);
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    let status = session.status();
    assert_eq!(status.era, 1);
    assert_eq!(status.promotions, 1);
    assert_eq!(status.rollbacks, 0);
    assert!(session.champion_model().is_some());

    // Subsequent chunks are evaluated prequentially.
    match session.push_chunk(&s.chunk(cfg.warmup_chunks)).unwrap() {
        ChunkOutcome::Processed { champion_loss, .. } => {
            let loss = champion_loss.expect("champion evaluates every chunk");
            assert!(loss.is_finite());
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    assert!(session.status().last_loss.is_some());
}

#[test]
fn concept_shift_fires_drift_and_promotes_a_challenger() {
    let dir = scratch("drift");
    let s = stream(11);
    let cfg = fast_config(&s);
    let mut session = OnlineSession::create(&dir, cfg, OnlineRuntime::local()).unwrap();

    // Two full segments: the shift between them must be detected.
    for i in 0..2 * s.segment_chunks {
        session.push_chunk(&s.chunk(i)).unwrap();
    }

    let status = session.status();
    assert!(status.drift_events >= 1, "no drift detected: {status:?}");
    assert!(
        status.promotions >= 2,
        "expected a post-drift promotion: {status:?}"
    );
    assert!(status.era >= 2, "champion never replaced: {status:?}");

    let events = session.events();
    assert!(
        events
            .iter()
            .any(|e| e.kind == kind::PROMOTE && e.reason == "drift"),
        "no drift-reason promotion in trace"
    );
    // The drift promotion records the displaced era for rollback.
    let promo = events
        .iter()
        .find(|e| e.kind == kind::PROMOTE && e.reason == "drift")
        .unwrap();
    assert!(promo.previous >= 1);
    assert!(promo.model_fp != 0);
    assert!(
        promo.loss + 1e-12 < promo.baseline,
        "challenger must beat champion on the holdout"
    );

    // Probation after the promotion: both eras evaluated on the same
    // chunk.
    let probation_chunk = events
        .iter()
        .filter(|e| e.kind == kind::EVAL)
        .map(|e| e.chunk)
        .fold(
            std::collections::BTreeMap::<usize, usize>::new(),
            |mut m, c| {
                *m.entry(c).or_insert(0) += 1;
                m
            },
        );
    assert!(
        probation_chunk.values().any(|&n| n == 2),
        "no probation double-eval found"
    );
}

#[test]
fn duplicate_delivery_is_idempotent() {
    let dir = scratch("dup");
    let s = stream(5);
    let cfg = fast_config(&s);
    let mut session = OnlineSession::create(&dir, cfg, OnlineRuntime::local()).unwrap();

    session.push_chunk(&s.chunk(0)).unwrap();
    let before = session.journal_bytes().unwrap();
    assert_eq!(
        session.push_chunk(&s.chunk(0)).unwrap(),
        ChunkOutcome::Duplicate
    );
    assert_eq!(
        session.journal_bytes().unwrap(),
        before,
        "a duplicate must not touch the journal"
    );
    // The next distinct chunk proceeds normally.
    match session.push_chunk(&s.chunk(1)).unwrap() {
        ChunkOutcome::Processed { chunk, .. } => assert_eq!(chunk, 1),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn schema_mismatch_is_rejected_without_wedging() {
    let dir = scratch("schema");
    let s = stream(5);
    let cfg = fast_config(&s);
    let mut session = OnlineSession::create(&dir, cfg, OnlineRuntime::local()).unwrap();
    session.push_chunk(&s.chunk(0)).unwrap();

    let mut wide = s;
    wide.features = s.features + 2;
    match session.push_chunk(&wide.chunk(1)) {
        Err(OnlineError::SchemaMismatch { .. }) => {}
        other => panic!("expected schema mismatch, got {other:?}"),
    }
    // The session is still usable.
    session.push_chunk(&s.chunk(1)).unwrap();
    assert_eq!(session.status().chunks, 2);
}

#[test]
fn rejected_drift_round_arms_a_retry_that_survives_restart() {
    use flaml_data::Task;
    use flaml_online::OnlineConfig;
    use flaml_synth::DriftStream;

    // The bench_online geometry: drift is confirmed at the segment
    // boundary itself, so the drift round trains on a window still
    // dominated by the old concept, loses its holdout, and is
    // rejected. The rejection must arm exactly one follow-up round
    // `window_chunks - 1` chunks later — after the window has
    // refreshed with post-shift data — and that retry must promote.
    let mut s = DriftStream::new(0);
    s.rows = 120;
    s.features = 4;
    s.segment_chunks = 8;
    s.margin_noise = 0.15;
    let mut cfg = OnlineConfig::new(Task::Binary, s.features);
    cfg.seed = s.seed;
    cfg.window_chunks = 4;
    cfg.holdout_chunks = 1;
    cfg.warmup_chunks = 2;
    cfg.drift_window = 2;
    cfg.drift_threshold = 0.1;
    let n = 21;

    let dir = scratch("retry");
    let mut session = OnlineSession::create(&dir, cfg.clone(), OnlineRuntime::local()).unwrap();
    for i in 0..n {
        session.push_chunk(&s.chunk(i)).unwrap();
    }
    let events = session.events().to_vec();
    let reference = session.journal_bytes().unwrap();

    let reject = events
        .iter()
        .find(|e| e.kind == kind::REJECT && e.reason == "drift")
        .expect("boundary drift round must be rejected");
    let retry = events
        .iter()
        .find(|e| e.kind == kind::ROUND && e.reason == "retry")
        .expect("rejected drift round must arm a retry");
    assert_eq!(
        retry.chunk,
        reject.chunk + cfg.window_chunks - 1,
        "retry fires once the window is fully post-shift"
    );
    assert!(
        !events
            .iter()
            .any(|e| e.kind == kind::ROUND && e.reason == "retry" && e.chunk > retry.chunk),
        "a retry must not re-arm"
    );
    assert!(
        events
            .iter()
            .any(|e| e.kind == kind::PROMOTE && e.reason == "retry"),
        "retry round trained on the refreshed window must promote"
    );

    // Kill the session mid-countdown (after the rejection, before the
    // retry): recovery must rebuild the armed countdown from the
    // journal and produce a byte-identical trace.
    let cut = reject.chunk + 1;
    let dir2 = scratch("retry-resume");
    let mut session = OnlineSession::create(&dir2, cfg, OnlineRuntime::local()).unwrap();
    for i in 0..=cut {
        session.push_chunk(&s.chunk(i)).unwrap();
    }
    drop(session);
    let mut session = OnlineSession::open(&dir2, OnlineRuntime::local()).unwrap();
    for i in cut + 1..n {
        session.push_chunk(&s.chunk(i)).unwrap();
    }
    assert_eq!(
        String::from_utf8(session.journal_bytes().unwrap()).unwrap(),
        String::from_utf8(reference).unwrap(),
        "restart mid-countdown changed the promotion trace"
    );
}

#[test]
fn reverting_concept_rolls_back_the_promotion() {
    use flaml_data::{Dataset, Task};

    // Hand-built stream: concept A, a brief flip to NOT-A (drift fires,
    // a challenger trained on the flipped chunks wins the flipped
    // holdout), then back to A — where the old champion clearly beats
    // the new one, so probation must roll the promotion back.
    let chunk = |idx: usize, flipped: bool| -> Dataset {
        let rows = 60;
        let x: Vec<f64> = (0..rows)
            .map(|r| ((r * 7919 + idx * 104_729) % 997) as f64 / 997.0)
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                let label = v > 0.5;
                f64::from(if flipped { !label } else { label })
            })
            .collect();
        Dataset::new(format!("flip-{idx}"), Task::Binary, vec![x], y).unwrap()
    };

    let dir = scratch("rollback");
    let s = stream(5);
    let mut cfg = fast_config(&s);
    cfg.features = 1;
    let probation = cfg.probation_chunks;
    assert!(probation >= 1, "test requires probation enabled");
    let mut session = OnlineSession::create(&dir, cfg.clone(), OnlineRuntime::local()).unwrap();

    let mut idx = 0;
    let mut push = |session: &mut OnlineSession, flipped: bool| {
        let out = session.push_chunk(&chunk(idx, flipped)).unwrap();
        idx += 1;
        out
    };

    // Concept A until well past warmup.
    for _ in 0..cfg.warmup_chunks + 2 {
        push(&mut session, false);
    }
    assert_eq!(session.status().era, 1, "warmup champion");

    // Flip the concept until a challenger is promoted.
    let mut promoted = false;
    for _ in 0..3 * cfg.window_chunks {
        if let ChunkOutcome::Processed { round: Some(r), .. } = push(&mut session, true) {
            if r.promoted {
                promoted = true;
                break;
            }
        }
    }
    assert!(promoted, "flip never promoted: {:?}", session.status());
    assert!(session.status().probation_left > 0);

    // Revert to A: the old champion dominates, probation fails.
    for _ in 0..probation {
        push(&mut session, false);
    }
    let status = session.status();
    assert_eq!(status.rollbacks, 1, "no rollback: {status:?}");
    assert_eq!(status.era, 1, "old champion restored: {status:?}");
    assert!(
        session
            .events()
            .iter()
            .any(|e| e.kind == kind::ROLLBACK && e.version == 1),
        "rollback event missing"
    );
}
