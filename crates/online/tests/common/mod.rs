//! Shared fixtures for the online integration suites: scratch dirs, a
//! small fast drifting stream, and a config tuned for test speed (one
//! cheap learner, tiny windows, tight trial caps).

#![allow(dead_code)]

use flaml_core::{LearnerKind, Storage};
use flaml_data::Task;
use flaml_online::{OnlineConfig, OnlineRuntime};
use flaml_synth::DriftStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NONCE: AtomicU64 = AtomicU64::new(0);

/// A unique empty scratch directory (removed if it already exists).
pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flaml-online-{tag}-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small, fast drifting stream: 60-row chunks, 4 features, a concept
/// shift every 6 chunks.
pub fn stream(seed: u64) -> DriftStream {
    let mut s = DriftStream::new(seed);
    s.rows = 60;
    s.features = 4;
    s.segment_chunks = 6;
    s.margin_noise = 0.15;
    s
}

/// A config sized for test speed, matched to [`stream`].
pub fn fast_config(s: &DriftStream) -> OnlineConfig {
    let mut cfg = OnlineConfig::new(Task::Binary, s.features);
    cfg.seed = s.seed;
    cfg.estimators = vec![LearnerKind::Lr];
    cfg.window_chunks = 4;
    cfg.holdout_chunks = 1;
    cfg.warmup_chunks = 2;
    cfg.drift_window = 3;
    cfg.drift_threshold = 0.1;
    cfg.promote_margin = 0.005;
    cfg.probation_chunks = 2;
    cfg.round_budget = 5.0;
    cfg.round_trials = 4;
    cfg
}

/// A runtime over `storage` with `workers` search threads, no registry.
pub fn runtime(storage: Arc<dyn Storage>, workers: usize) -> OnlineRuntime {
    OnlineRuntime {
        storage,
        workers,
        registry: None,
        slot: "online".to_string(),
    }
}
