//! Promotion and rollback decisions.
//!
//! ChaCha promotes a challenger only when it *clearly* beats the
//! champion — a configurable loss margin guards against promoting on
//! holdout noise, which would churn the served model on every round.
//! The same margin guards the rollback direction during probation: the
//! previous champion must clearly beat the new one to be restored.

/// The margin-based promotion test (pure; both decisions are journaled,
/// so replaying them during recovery reproduces the exact trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Loss margin the winner must clear.
    pub margin: f64,
}

impl PromotionPolicy {
    /// A policy requiring wins by more than `margin` (clamped to ≥ 0).
    pub fn new(margin: f64) -> PromotionPolicy {
        PromotionPolicy {
            margin: if margin.is_finite() && margin > 0.0 {
                margin
            } else {
                0.0
            },
        }
    }

    /// Whether a challenger with held-out loss `challenger` displaces a
    /// champion with held-out loss `champion` (infinite when there is
    /// no champion — a finite challenger always wins warmup).
    pub fn should_promote(&self, challenger: f64, champion: f64) -> bool {
        challenger.is_finite() && challenger + self.margin < champion
    }

    /// Whether probation fails: the previous champion's summed
    /// probation loss beats the new champion's by more than the margin
    /// (scaled by nothing — sums over the same chunks are comparable).
    pub fn should_roll_back(&self, previous_sum: f64, current_sum: f64) -> bool {
        previous_sum.is_finite() && previous_sum + self.margin < current_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_guards_both_directions() {
        let p = PromotionPolicy::new(0.05);
        assert!(p.should_promote(0.10, 0.20));
        assert!(
            !p.should_promote(0.18, 0.20),
            "within margin: keep champion"
        );
        assert!(!p.should_promote(f64::INFINITY, 0.20));
        assert!(
            p.should_promote(0.5, f64::INFINITY),
            "warmup: any finite loss wins"
        );
        assert!(p.should_roll_back(1.0, 1.2));
        assert!(!p.should_roll_back(1.18, 1.2));
        assert!(!p.should_roll_back(f64::NAN, 1.0));
    }

    #[test]
    fn bad_margins_clamp_to_zero() {
        assert_eq!(PromotionPolicy::new(-1.0).margin, 0.0);
        assert_eq!(PromotionPolicy::new(f64::NAN).margin, 0.0);
    }
}
