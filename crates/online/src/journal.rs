//! The stream journal: a durable, torn-tail-tolerant record of the
//! online loop's every decision.
//!
//! One JSONL file per stream: a header line (the stream's full
//! configuration — the durable source of truth a recovering process
//! reopens with) followed by one [`OnlineEvent`] per state transition:
//! chunk ingested, champion evaluated, drift detected, challenger round
//! started, promotion / rejection / rollback decided. Events carry no
//! wall-clock time and no process-local identifiers, so the byte
//! content of the journal is a pure function of the stream's chunks and
//! configuration — the property the determinism suite asserts across
//! worker counts and kill-and-resume runs.
//!
//! Writing mirrors [`flaml_journal`]'s fsync-on-commit contract: every
//! append syncs before returning and a failed append truncates back to
//! the committed prefix. Reading tolerates a torn tail by returning the
//! maximal committed prefix, exactly like [`flaml_journal::Journal`].

use flaml_core::{Storage, StorageError, StorageFile};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Stream-journal schema version.
pub const ONLINE_SCHEMA_VERSION: u32 = 1;

/// First line of a stream journal: the full stream configuration.
/// Recovery rebuilds an [`crate::OnlineConfig`] from this, so the
/// journal alone (plus the persisted window chunks and champion
/// artifacts next to it) is sufficient to resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineHeader {
    /// Schema version ([`ONLINE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Master seed for challenger searches.
    pub seed: u64,
    /// Task name as printed by [`crate::task_name`].
    pub task: String,
    /// Features per chunk row.
    pub features: usize,
    /// Evaluation metric name ([`flaml_metrics::Metric::name`]).
    pub metric: String,
    /// Learner names searched by challenger rounds.
    pub estimators: Vec<String>,
    /// Sliding-window length in chunks.
    pub window_chunks: usize,
    /// Most recent chunks held out from challenger training.
    pub holdout_chunks: usize,
    /// Chunks accumulated before the first (warmup) round.
    pub warmup_chunks: usize,
    /// Drift-detector recent-window length.
    pub drift_window: usize,
    /// Drift-detector loss-shift threshold.
    pub drift_threshold: f64,
    /// Loss margin a challenger must beat the champion by.
    pub promote_margin: f64,
    /// Post-promotion probation length in chunks (0 = no rollback).
    pub probation_chunks: usize,
    /// Scheduled challenger rounds every N chunks (0 = drift-only).
    pub refresh_every: usize,
    /// Virtual-seconds budget per challenger search.
    pub round_budget: f64,
    /// Trial cap per challenger search.
    pub round_trials: usize,
}

/// Event kinds, as stored in [`OnlineEvent::kind`].
pub mod kind {
    /// A chunk was ingested (fingerprint + rows recorded).
    pub const CHUNK: &str = "chunk";
    /// A model (champion, or the previous champion during probation)
    /// was evaluated on the incoming chunk.
    pub const EVAL: &str = "eval";
    /// The drift detector fired.
    pub const DRIFT: &str = "drift";
    /// A challenger round started (its search journal is durable state).
    pub const ROUND: &str = "round";
    /// A challenger was promoted to champion.
    pub const PROMOTE: &str = "promote";
    /// A challenger lost to the champion.
    pub const REJECT: &str = "reject";
    /// Probation failed; the previous champion was restored.
    pub const ROLLBACK: &str = "rollback";
}

/// One committed state transition of the online loop. A single flat
/// struct (rather than a tagged enum) keeps the serialized layout
/// identical across kinds; unused fields are zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineEvent {
    /// Event kind (see [`kind`]).
    pub kind: String,
    /// Index of the chunk during whose processing the event happened.
    pub chunk: usize,
    /// Chunk fingerprint ([`flaml_data::Dataset::fingerprint`]);
    /// `chunk` events only.
    pub fingerprint: u64,
    /// Chunk rows; `chunk` events only.
    pub rows: usize,
    /// Champion era the event concerns (1-based; `eval`, `promote`,
    /// `rollback`).
    pub era: u64,
    /// Challenger round index (1-based; `round`, `promote`, `reject`).
    pub round: u64,
    /// Per-chunk eval loss (`eval`), or the challenger's held-out loss
    /// (`promote` / `reject`).
    pub loss: f64,
    /// Drift baseline mean (`drift`), or the champion's held-out loss
    /// (`promote` / `reject`; infinite when there was no champion).
    pub baseline: f64,
    /// Drift recent-window mean (`drift` events only).
    pub recent: f64,
    /// Round trigger ("warmup" | "drift" | "scheduled"); `round` and
    /// `promote` events.
    pub reason: String,
    /// Era-based version now served (`promote`: the new era;
    /// `rollback`: the era rolled back to).
    pub version: u64,
    /// Era served before the event (0 = none) — the exact rollback
    /// target recorded at promotion time.
    pub previous: u64,
    /// Champion artifact fingerprint (`promote` events only).
    pub model_fp: u64,
}

impl OnlineEvent {
    /// A zeroed event of `kind` for chunk `chunk`.
    pub fn new(kind: &str, chunk: usize) -> OnlineEvent {
        OnlineEvent {
            kind: kind.to_string(),
            chunk,
            fingerprint: 0,
            rows: 0,
            era: 0,
            round: 0,
            loss: 0.0,
            baseline: 0.0,
            recent: 0.0,
            reason: String::new(),
            version: 0,
            previous: 0,
            model_fp: 0,
        }
    }
}

/// Why a stream journal could not be opened. Torn trailing *events* are
/// not an error (the reader truncates to the committed prefix); only a
/// missing file, an unparseable header, or a wrong schema version is.
#[derive(Debug)]
pub enum LogError {
    /// The file does not exist, or its header line never committed
    /// (a crash before the first sync) — either way, no stream state
    /// was ever durable and the caller may recreate from scratch.
    Missing,
    /// A storage failure reading or writing.
    Storage(StorageError),
    /// A complete header line exists but does not parse, or the schema
    /// version is unsupported: the journal is damaged beyond resume.
    Corrupt(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Missing => write!(f, "stream journal missing or header never committed"),
            LogError::Storage(e) => write!(f, "stream journal storage error: {e}"),
            LogError::Corrupt(msg) => write!(f, "stream journal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for LogError {}

/// A stream journal read back: header, committed events, and the byte
/// length of the committed prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct LogContents {
    /// The configuration header.
    pub header: OnlineHeader,
    /// Committed events in commit order.
    pub events: Vec<OnlineEvent>,
    /// Bytes of committed prefix (for truncate-then-append resume).
    pub committed_bytes: u64,
}

/// Reads a stream journal, tolerating a torn tail (see [`LogError`]).
///
/// # Errors
///
/// [`LogError::Missing`] when no committed header exists,
/// [`LogError::Corrupt`] for header damage, [`LogError::Storage`] for
/// read failures.
pub fn read_log(storage: &dyn Storage, path: &Path) -> Result<LogContents, LogError> {
    if !storage.exists(path) {
        return Err(LogError::Missing);
    }
    let bytes = storage.read(path).map_err(LogError::Storage)?;
    let text = String::from_utf8_lossy(&bytes);
    let mut offset = 0u64;
    let mut lines = text.split_inclusive('\n');
    let header_line = match lines.next() {
        Some(l) if l.ends_with('\n') => l,
        // Empty file or torn header: nothing was ever durably committed.
        _ => return Err(LogError::Missing),
    };
    let header: OnlineHeader = serde_json::from_str(header_line.trim_end_matches('\n'))
        .map_err(|e| LogError::Corrupt(format!("bad header: {e}")))?;
    if header.schema_version != ONLINE_SCHEMA_VERSION {
        return Err(LogError::Corrupt(format!(
            "schema version {} unsupported (reader speaks {ONLINE_SCHEMA_VERSION})",
            header.schema_version
        )));
    }
    offset += header_line.len() as u64;
    let mut events = Vec::new();
    for line in lines {
        if !line.ends_with('\n') {
            break;
        }
        match serde_json::from_str::<OnlineEvent>(line.trim_end_matches('\n')) {
            Ok(ev) => {
                events.push(ev);
                offset += line.len() as u64;
            }
            // First damaged record: everything after it is suspect.
            Err(_) => break,
        }
    }
    Ok(LogContents {
        header,
        events,
        committed_bytes: offset,
    })
}

/// The append side of the stream journal: fsync-on-commit, truncate on
/// failed append — the same contract as [`flaml_journal::JournalWriter`].
#[derive(Debug)]
pub struct EventLog {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    committed_len: u64,
}

impl EventLog {
    /// Creates (truncating) a stream journal and durably writes its
    /// header.
    ///
    /// # Errors
    ///
    /// Any storage failure creating, writing, or syncing.
    pub fn create(
        storage: &dyn Storage,
        path: &Path,
        header: &OnlineHeader,
    ) -> Result<EventLog, StorageError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                storage.create_dir_all(dir)?;
            }
        }
        let file = storage.create(path)?;
        let mut log = EventLog {
            file,
            path: path.to_path_buf(),
            committed_len: 0,
        };
        let json = serde_json::to_string(header).map_err(|e| StorageError::Io {
            op: "serialize-header",
            path: path.to_path_buf(),
            source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        })?;
        log.write_line(&json)?;
        Ok(log)
    }

    /// Reopens an existing journal for appending after truncating it to
    /// `committed_bytes` (as reported by [`read_log`]), discarding any
    /// torn tail.
    ///
    /// # Errors
    ///
    /// Any storage failure truncating or opening.
    pub fn resume(
        storage: &dyn Storage,
        path: &Path,
        committed_bytes: u64,
    ) -> Result<EventLog, StorageError> {
        storage.truncate_file(path, committed_bytes)?;
        let file = storage.append(path)?;
        Ok(EventLog {
            file,
            path: path.to_path_buf(),
            committed_len: committed_bytes,
        })
    }

    /// Appends one event durably (fsync before returning).
    ///
    /// # Errors
    ///
    /// The storage failure; the file is first truncated back to its
    /// committed prefix so torn bytes never survive.
    pub fn append(&mut self, event: &OnlineEvent) -> Result<(), StorageError> {
        let json = serde_json::to_string(event).map_err(|e| StorageError::Io {
            op: "serialize-event",
            path: self.path.clone(),
            source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        })?;
        self.write_line(&json)
    }

    fn write_line(&mut self, json: &str) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(json.len() + 1);
        buf.extend_from_slice(json.as_bytes());
        buf.push(b'\n');
        let commit = (|| {
            self.file.write_all(&buf)?;
            self.file.sync_data()
        })();
        match commit {
            Ok(()) => {
                self.committed_len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                let _ = self.file.truncate(self.committed_len);
                Err(e)
            }
        }
    }

    /// Bytes known durably committed so far.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        // Best-effort final sync; every committed append already synced.
        let _ = self.file.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flaml_core::disk;

    fn header() -> OnlineHeader {
        OnlineHeader {
            schema_version: ONLINE_SCHEMA_VERSION,
            seed: 7,
            task: "binary".into(),
            features: 4,
            metric: "log_loss".into(),
            estimators: vec!["lr".into()],
            window_chunks: 6,
            holdout_chunks: 1,
            warmup_chunks: 3,
            drift_window: 3,
            drift_threshold: 0.08,
            promote_margin: 0.01,
            probation_chunks: 2,
            refresh_every: 0,
            round_budget: 4.0,
            round_trials: 6,
        }
    }

    #[test]
    fn round_trip_and_torn_tail() {
        let dir = std::env::temp_dir().join("flaml-online-journal-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("online.jsonl");
        let storage = disk();
        let mut log = EventLog::create(storage.as_ref(), &path, &header()).unwrap();
        let mut ev = OnlineEvent::new(kind::CHUNK, 0);
        ev.fingerprint = 0xfeed;
        ev.rows = 128;
        log.append(&ev).unwrap();
        let mut eval = OnlineEvent::new(kind::EVAL, 0);
        eval.era = 1;
        eval.loss = 0.25;
        log.append(&eval).unwrap();
        drop(log);

        let contents = read_log(storage.as_ref(), &path).unwrap();
        assert_eq!(contents.header, header());
        assert_eq!(contents.events, vec![ev.clone(), eval.clone()]);

        // Torn tail: append garbage without a newline — reader returns
        // the committed prefix; resume truncates it away.
        let committed = contents.committed_bytes;
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"kind\":\"ev").unwrap();
        drop(f);
        let contents = read_log(storage.as_ref(), &path).unwrap();
        assert_eq!(contents.events.len(), 2);
        assert_eq!(contents.committed_bytes, committed);
        let log = EventLog::resume(storage.as_ref(), &path, committed).unwrap();
        drop(log);
        assert_eq!(storage.file_len(&path).unwrap(), committed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_torn_header_report_missing() {
        let dir = std::env::temp_dir().join("flaml-online-journal-missing");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let storage = disk();
        let path = dir.join("online.jsonl");
        assert!(matches!(
            read_log(storage.as_ref(), &path),
            Err(LogError::Missing)
        ));
        // A header that never got its newline is as if never written.
        std::fs::write(&path, b"{\"schema_version\":1").unwrap();
        assert!(matches!(
            read_log(storage.as_ref(), &path),
            Err(LogError::Missing)
        ));
        // A complete but unparseable header is corruption.
        std::fs::write(&path, b"not json\n").unwrap();
        assert!(matches!(
            read_log(storage.as_ref(), &path),
            Err(LogError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn infinite_losses_round_trip() {
        let dir = std::env::temp_dir().join("flaml-online-journal-inf");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("online.jsonl");
        let storage = disk();
        let mut log = EventLog::create(storage.as_ref(), &path, &header()).unwrap();
        let mut ev = OnlineEvent::new(kind::REJECT, 4);
        ev.loss = 0.5;
        ev.baseline = f64::INFINITY;
        log.append(&ev).unwrap();
        drop(log);
        let contents = read_log(storage.as_ref(), &path).unwrap();
        assert_eq!(contents.events[0].baseline, f64::INFINITY);
        std::fs::remove_dir_all(&dir).ok();
    }
}
