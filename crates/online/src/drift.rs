//! Windowed loss-shift drift detection over the champion's per-chunk
//! evaluation losses.
//!
//! The detector is the trigger of the online loop: the champion is
//! evaluated on every incoming chunk *before* anything trains on it
//! (prequential, "test then train"), and the resulting loss sequence is
//! fed to [`DriftDetector::observe`]. When the mean loss of the most
//! recent `window` chunks exceeds the mean of everything before them in
//! the current era by more than `threshold`, the detector fires and the
//! session launches a challenger round.
//!
//! The test is deliberately a pure function of the observed losses —
//! no wall clock, no randomness — so a resumed session that replays the
//! journaled losses reconstructs the exact detector state and fires at
//! the exact same chunk. That purity is what makes the promotion trace
//! byte-identical across kill-and-resume and across worker counts.

/// What a firing detector saw: the pre-shift baseline mean and the
/// recent-window mean that exceeded it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSignal {
    /// Mean loss of the era's chunks before the recent window.
    pub baseline: f64,
    /// Mean loss of the last `window` chunks.
    pub recent: f64,
}

/// A deterministic windowed loss-shift test (see the module docs).
#[derive(Debug, Clone)]
pub struct DriftDetector {
    window: usize,
    threshold: f64,
    losses: Vec<f64>,
}

impl DriftDetector {
    /// A detector firing when the last `window` losses exceed the
    /// preceding baseline mean by more than `threshold`. The baseline
    /// needs at least `window` observations of its own, so the earliest
    /// possible firing is `2 * window` chunks into an era.
    pub fn new(window: usize, threshold: f64) -> DriftDetector {
        DriftDetector {
            window: window.max(1),
            threshold,
            losses: Vec::new(),
        }
    }

    /// Feeds one per-chunk champion loss; returns the drift signal if
    /// the loss shift crosses the threshold at this observation.
    /// Non-finite losses (a failed evaluation) are clamped out rather
    /// than poisoning the means.
    pub fn observe(&mut self, loss: f64) -> Option<DriftSignal> {
        self.losses.push(if loss.is_finite() { loss } else { 0.0 });
        let n = self.losses.len();
        if n < 2 * self.window {
            return None;
        }
        let recent = mean(&self.losses[n - self.window..]);
        let baseline = mean(&self.losses[..n - self.window]);
        if recent - baseline > self.threshold {
            Some(DriftSignal { baseline, recent })
        } else {
            None
        }
    }

    /// Losses observed in the current era.
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// Whether no losses have been observed this era.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Re-anchors the detector at an era boundary (promotion, rollback,
    /// or a rejected challenger round): the old era's losses no longer
    /// describe the model now being served.
    pub fn reset(&mut self) {
        self.losses.clear();
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_a_real_shift() {
        let mut d = DriftDetector::new(3, 0.1);
        for _ in 0..10 {
            assert_eq!(d.observe(0.30), None, "stationary losses never fire");
        }
        // Loss jumps by 0.3: fires as soon as the recent window is
        // dominated by post-shift chunks.
        let mut fired = None;
        for i in 0..6 {
            if let Some(sig) = d.observe(0.60) {
                fired = Some((i, sig));
                break;
            }
        }
        let (at, sig) = fired.expect("shift must fire");
        assert!(at <= 3, "fired within one window of the shift, got {at}");
        assert!(sig.recent > sig.baseline + 0.1);
    }

    #[test]
    fn needs_two_windows_before_firing() {
        let mut d = DriftDetector::new(4, 0.0);
        for i in 0..7 {
            assert_eq!(d.observe(i as f64), None, "observation {i} is too early");
        }
        assert!(d.observe(7.0).is_some(), "2*window observations suffice");
    }

    #[test]
    fn reset_reanchors() {
        let mut d = DriftDetector::new(2, 0.05);
        for _ in 0..4 {
            d.observe(0.2);
        }
        assert!(d.observe(0.9).is_some(), "shift detected");
        d.reset();
        assert!(d.is_empty());
        for _ in 0..8 {
            assert_eq!(
                d.observe(0.9),
                None,
                "post-reset the high loss is the new baseline"
            );
        }
    }

    #[test]
    fn deterministic_replay_matches() {
        let seq = [0.2, 0.21, 0.19, 0.2, 0.5, 0.52, 0.51, 0.5];
        let run = |xs: &[f64]| {
            let mut d = DriftDetector::new(2, 0.1);
            xs.iter().map(|&l| d.observe(l)).collect::<Vec<_>>()
        };
        assert_eq!(run(&seq), run(&seq));
    }

    #[test]
    fn non_finite_losses_are_clamped() {
        let mut d = DriftDetector::new(1, 0.5);
        d.observe(f64::NAN);
        d.observe(f64::INFINITY);
        assert_eq!(d.len(), 2);
        assert!(d.observe(0.1).is_none(), "clamped values keep means finite");
    }
}
