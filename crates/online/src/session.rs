//! The online champion–challenger loop ([`OnlineSession`]).
//!
//! # Live pipeline (per chunk, strictly sequential)
//!
//! 1. persist the chunk payload atomically, then journal a `chunk`
//!    event (fingerprint + rows) and slide the training window;
//! 2. evaluate the champion on the *raw incoming* chunk (prequential:
//!    the chunk is tested on before anything trains on it), journal an
//!    `eval` event, feed the loss to the [`DriftDetector`];
//! 3. during probation, also evaluate the *previous* champion and, once
//!    the probation window closes, either journal a `rollback` (and
//!    restore it) or silently pass;
//! 4. decide whether a challenger round runs — warmup (no champion
//!    yet), drift (detector fired; journal a `drift` event), or a
//!    scheduled refresh — journal a `round` event, run a warm-started
//!    budgeted [`SearchHandle`] search on the window minus the holdout,
//!    score champion and challenger on the holdout, and journal the
//!    `promote` / `reject` decision.
//!
//! # Crash recovery
//!
//! Every decision is journaled *before* it takes effect elsewhere, and
//! every non-journal artifact (chunk payloads, champion artifacts,
//! round search journals) is written atomically and is either
//! deterministic to recompute or read back and verified. Because the
//! pipeline is strictly sequential, at most the **last** chunk's
//! processing can be incomplete after a crash. [`OnlineSession::open`]
//! replays the committed events to rebuild the exact in-memory state
//! (including the drift detector, which is a pure function of the
//! journaled losses), then re-enters the pipeline for the last chunk
//! with a progress mask of the steps already committed — each step is
//! skipped if committed, recomputed identically if not. The resulting
//! journal is byte-identical to an uninterrupted run's.

use crate::chunk::{concat_chunks, parse_task, task_name, ChunkPayload};
use crate::drift::{DriftDetector, DriftSignal};
use crate::journal::{
    kind, read_log, EventLog, LogError, OnlineEvent, OnlineHeader, ONLINE_SCHEMA_VERSION,
};
use crate::promote::PromotionPolicy;
use crate::OnlineError;
use flaml_core::{
    default_virtual_cost, disk, is_stale_tmp, AutoMl, AutoMlError, CompiledModel, Journal,
    LearnerKind, ModelRegistry, PromoteReason, SearchHandle, Storage, TimeSource,
};
use flaml_data::{Dataset, Task};
use flaml_metrics::Metric;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// Stream configuration; round-trips through the journal header, so a
/// recovered session runs under exactly the creating session's config.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Master seed; challenger round `r` searches with a seed derived
    /// from `(seed, r)`.
    pub seed: u64,
    /// Stream task.
    pub task: Task,
    /// Features per row (fixed for the stream's lifetime).
    pub features: usize,
    /// Evaluation metric; `None` picks log-loss for classification
    /// (ROC-AUC is undefined on single-class chunks) and MSE for
    /// regression.
    pub metric: Option<Metric>,
    /// Learners challenger rounds search over.
    pub estimators: Vec<LearnerKind>,
    /// Sliding-window length in chunks; challengers train on it.
    pub window_chunks: usize,
    /// Most recent chunks held out (from training) to score challenger
    /// vs. champion.
    pub holdout_chunks: usize,
    /// Chunks accumulated before the warmup round trains the first
    /// champion.
    pub warmup_chunks: usize,
    /// Drift-detector recent-window length (chunks).
    pub drift_window: usize,
    /// Drift-detector loss-shift threshold.
    pub drift_threshold: f64,
    /// Margin a challenger's holdout loss must beat the champion's by.
    pub promote_margin: f64,
    /// Chunks a fresh champion is compared against its predecessor
    /// before the promotion is final (0 disables rollback).
    pub probation_chunks: usize,
    /// Scheduled challenger round every N chunks without one (0 = only
    /// drift-triggered rounds).
    pub refresh_every: usize,
    /// Virtual-seconds budget per challenger search.
    pub round_budget: f64,
    /// Trial cap per challenger search.
    pub round_trials: usize,
}

impl OnlineConfig {
    /// Defaults for a stream of `task` with `features` columns.
    pub fn new(task: Task, features: usize) -> OnlineConfig {
        OnlineConfig {
            seed: 0,
            task,
            features,
            metric: None,
            estimators: vec![LearnerKind::LightGbm, LearnerKind::Lr],
            window_chunks: 6,
            holdout_chunks: 1,
            warmup_chunks: 3,
            drift_window: 3,
            drift_threshold: 0.08,
            promote_margin: 0.01,
            probation_chunks: 2,
            refresh_every: 0,
            round_budget: 5.0,
            round_trials: 8,
        }
    }

    /// The metric actually used (see [`OnlineConfig::metric`]).
    pub fn resolved_metric(&self) -> Metric {
        self.metric.unwrap_or(match self.task {
            Task::Regression => Metric::Mse,
            _ => Metric::LogLoss,
        })
    }

    fn validate(&self) -> Result<(), OnlineError> {
        let fail = |msg: &str| Err(OnlineError::Config(msg.to_string()));
        if self.features == 0 {
            return fail("features must be >= 1");
        }
        if self.window_chunks < 2 {
            return fail("window_chunks must be >= 2");
        }
        if self.holdout_chunks == 0 || self.holdout_chunks >= self.window_chunks {
            return fail("holdout_chunks must be in 1..window_chunks");
        }
        if self.warmup_chunks <= self.holdout_chunks || self.warmup_chunks > self.window_chunks {
            return fail("warmup_chunks must be in holdout_chunks+1..=window_chunks");
        }
        if self.drift_window == 0 {
            return fail("drift_window must be >= 1");
        }
        if !(self.drift_threshold.is_finite() && self.drift_threshold >= 0.0) {
            return fail("drift_threshold must be finite and >= 0");
        }
        if !(self.promote_margin.is_finite() && self.promote_margin >= 0.0) {
            return fail("promote_margin must be finite and >= 0");
        }
        if !(self.round_budget.is_finite() && self.round_budget > 0.0) {
            return fail("round_budget must be positive");
        }
        if self.round_trials == 0 {
            return fail("round_trials must be >= 1");
        }
        if self.estimators.is_empty() {
            return fail("estimators must not be empty");
        }
        Ok(())
    }

    fn to_header(&self) -> OnlineHeader {
        OnlineHeader {
            schema_version: ONLINE_SCHEMA_VERSION,
            seed: self.seed,
            task: task_name(self.task),
            features: self.features,
            metric: self.resolved_metric().name().to_string(),
            estimators: self
                .estimators
                .iter()
                .map(|e| e.name().to_string())
                .collect(),
            window_chunks: self.window_chunks,
            holdout_chunks: self.holdout_chunks,
            warmup_chunks: self.warmup_chunks,
            drift_window: self.drift_window,
            drift_threshold: self.drift_threshold,
            promote_margin: self.promote_margin,
            probation_chunks: self.probation_chunks,
            refresh_every: self.refresh_every,
            round_budget: self.round_budget,
            round_trials: self.round_trials,
        }
    }

    fn from_header(h: &OnlineHeader) -> Result<OnlineConfig, OnlineError> {
        let task = parse_task(&h.task)
            .ok_or_else(|| OnlineError::Corrupt(format!("unknown task {:?}", h.task)))?;
        let metric = Metric::parse(&h.metric)
            .ok_or_else(|| OnlineError::Corrupt(format!("unknown metric {:?}", h.metric)))?;
        let estimators = h
            .estimators
            .iter()
            .map(|name| {
                LearnerKind::parse(name)
                    .ok_or_else(|| OnlineError::Corrupt(format!("unknown learner {name:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OnlineConfig {
            seed: h.seed,
            task,
            features: h.features,
            metric: Some(metric),
            estimators,
            window_chunks: h.window_chunks,
            holdout_chunks: h.holdout_chunks,
            warmup_chunks: h.warmup_chunks,
            drift_window: h.drift_window,
            drift_threshold: h.drift_threshold,
            promote_margin: h.promote_margin,
            probation_chunks: h.probation_chunks,
            refresh_every: h.refresh_every,
            round_budget: h.round_budget,
            round_trials: h.round_trials,
        })
    }
}

/// Process-local wiring (NOT durable; recovery takes a fresh one): the
/// storage backend, worker count for challenger searches, and the
/// optional serving registry promotions publish through.
#[derive(Clone)]
pub struct OnlineRuntime {
    /// Storage backend for the journal, chunks, and artifacts.
    pub storage: Arc<dyn Storage>,
    /// Worker threads for challenger searches. Searches run on a
    /// virtual clock, so the promotion trace is byte-identical at any
    /// worker count.
    pub workers: usize,
    /// Registry promotions publish to (and rollbacks roll back in).
    pub registry: Option<Arc<ModelRegistry>>,
    /// Registry slot name.
    pub slot: String,
}

impl OnlineRuntime {
    /// Real-disk storage, one worker, no registry.
    pub fn local() -> OnlineRuntime {
        OnlineRuntime {
            storage: disk(),
            workers: 1,
            registry: None,
            slot: "online".to_string(),
        }
    }
}

/// What one `push_chunk` did.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkOutcome {
    /// The chunk's fingerprint matches the last committed chunk —
    /// a retried delivery; nothing happened.
    Duplicate,
    /// The chunk was processed to completion.
    Processed {
        /// The chunk's index in the stream.
        chunk: usize,
        /// Champion's prequential loss on this chunk (None before the
        /// first champion exists).
        champion_loss: Option<f64>,
        /// Whether the drift detector fired on this chunk.
        drifted: bool,
        /// The challenger round this chunk triggered, if any.
        round: Option<RoundOutcome>,
        /// Whether probation failed and the previous champion was
        /// restored.
        rolled_back: bool,
    },
}

/// A finished challenger round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Round index (1-based).
    pub round: u64,
    /// Trigger: "warmup" | "drift" | "scheduled".
    pub reason: String,
    /// Whether the challenger was promoted.
    pub promoted: bool,
    /// Challenger's holdout loss (infinite if the search found no
    /// viable model).
    pub challenger_loss: f64,
    /// Champion's holdout loss (infinite when there was no champion).
    pub champion_loss: f64,
}

/// A snapshot of the stream's counters, for status endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStatus {
    /// Chunks fully or partially ingested (the next chunk's index).
    pub chunks: usize,
    /// Challenger rounds started.
    pub rounds: u64,
    /// Era of the serving champion (0 = none yet).
    pub era: u64,
    /// Drift events fired.
    pub drift_events: usize,
    /// Promotions (including warmup).
    pub promotions: usize,
    /// Rejected challenger rounds.
    pub rejections: usize,
    /// Probation rollbacks.
    pub rollbacks: usize,
    /// Champion's loss on the most recent evaluated chunk.
    pub last_loss: Option<f64>,
    /// Probation chunks remaining for the current champion (0 = not on
    /// probation).
    pub probation_left: usize,
    /// Chunks currently in the sliding window.
    pub window: usize,
}

/// A champion (or probation predecessor): the era it was promoted in
/// and its compiled artifact.
#[derive(Debug, Clone)]
struct Champion {
    era: u64,
    model: CompiledModel,
}

/// Progress mask for the chunk being (re-)processed: which pipeline
/// steps already have committed journal events. Live pushes start from
/// `default()`; recovery folds the committed tail of the journal into
/// one of these and re-enters the pipeline with it.
#[derive(Debug, Clone, Default)]
struct Progress {
    chunk: Option<usize>,
    /// Champion era when the chunk's processing started (`Some(0)` =
    /// none). Live pushes leave this `None` (the current champion *is*
    /// the chunk-start champion); recovery needs it because a round
    /// later in the same chunk may have replaced the champion — the
    /// prequential eval must not rerun against the new one.
    era_at_start: Option<u64>,
    /// Whether probation was already running when the chunk's
    /// processing started. Same recovery concern as `era_at_start`: a
    /// promotion *during* this chunk starts probation for the next
    /// chunk, not retroactively for this one.
    probation_at_start: Option<bool>,
    champ_eval: Option<f64>,
    prev_eval: bool,
    drift_committed: bool,
    drift_signal: Option<DriftSignal>,
    round: Option<(u64, String)>,
    decided: bool,
}

/// Scalar state recovered by folding the committed journal events.
struct FoldState {
    next_chunk: usize,
    last_fp: u64,
    chunks_since_round: usize,
    rounds: u64,
    next_era: u64,
    champ_era: u64,
    prev_era: u64,
    probation_left: usize,
    prob_cur: f64,
    prob_prev: f64,
    detector: DriftDetector,
    retry_in: Option<usize>,
    n_drift: usize,
    n_promote: usize,
    n_reject: usize,
    n_rollback: usize,
    last_loss: Option<f64>,
    chunk_fps: BTreeMap<usize, u64>,
    progress: Progress,
}

/// A durable streaming AutoML session (see the module docs).
pub struct OnlineSession {
    cfg: OnlineConfig,
    rt: OnlineRuntime,
    dir: PathBuf,
    log: EventLog,
    metric: Metric,
    policy: PromotionPolicy,
    detector: DriftDetector,
    next_chunk: usize,
    last_fp: u64,
    window: VecDeque<(usize, Dataset)>,
    champion: Option<Champion>,
    prev: Option<Champion>,
    next_era: u64,
    rounds: u64,
    chunks_since_round: usize,
    /// Chunks until the follow-up round a rejected drift round armed
    /// (`Some(0)` = due). See the round-decision chain in `process`.
    retry_in: Option<usize>,
    probation_left: usize,
    prob_cur: f64,
    prob_prev: f64,
    n_drift: usize,
    n_promote: usize,
    n_reject: usize,
    n_rollback: usize,
    last_loss: Option<f64>,
    events: Vec<OnlineEvent>,
    wedged: bool,
}

impl OnlineSession {
    /// Creates a fresh stream at `dir` (journal `online.jsonl`, plus
    /// `chunks/`, `rounds/`, and `champions/` as they fill).
    ///
    /// # Errors
    ///
    /// [`OnlineError::Corrupt`] if a stream already exists at `dir`
    /// (use [`OnlineSession::open`]); [`OnlineError::Config`] for an
    /// invalid config; storage errors.
    pub fn create(
        dir: impl Into<PathBuf>,
        cfg: OnlineConfig,
        rt: OnlineRuntime,
    ) -> Result<OnlineSession, OnlineError> {
        let dir = dir.into();
        cfg.validate()?;
        let journal = dir.join("online.jsonl");
        match read_log(rt.storage.as_ref(), &journal) {
            Err(LogError::Missing) => {}
            Ok(_) => {
                return Err(OnlineError::Corrupt(format!(
                    "stream already exists at {}; use open",
                    dir.display()
                )))
            }
            Err(LogError::Corrupt(msg)) => return Err(OnlineError::Corrupt(msg)),
            Err(LogError::Storage(e)) => return Err(OnlineError::Durability(e)),
        }
        rt.storage.create_dir_all(&dir)?;
        let log = EventLog::create(rt.storage.as_ref(), &journal, &cfg.to_header())?;
        Ok(OnlineSession::blank(dir, cfg, rt, log))
    }

    /// Opens an existing stream at `dir`, completing any step a crash
    /// interrupted (an unfinished challenger round resumes its search
    /// journal; a persisted-but-unjournaled chunk is processed). After
    /// `open` returns, the journal is byte-identical to what an
    /// uninterrupted run would have written.
    ///
    /// # Errors
    ///
    /// [`OnlineError::Journal`] with [`LogError::Missing`] if no
    /// stream exists; [`OnlineError::Corrupt`] if durable state fails
    /// validation; storage errors.
    pub fn open(dir: impl Into<PathBuf>, rt: OnlineRuntime) -> Result<OnlineSession, OnlineError> {
        let dir = dir.into();
        let journal = dir.join("online.jsonl");
        let contents = read_log(rt.storage.as_ref(), &journal).map_err(OnlineError::Journal)?;
        let cfg = OnlineConfig::from_header(&contents.header)?;
        cfg.validate()?;
        let log = EventLog::resume(rt.storage.as_ref(), &journal, contents.committed_bytes)?;
        let mut s = OnlineSession::blank(dir, cfg, rt, log);
        s.sweep_stale_tmps()?;

        let fold = s.fold(&contents.events)?;
        s.next_chunk = fold.next_chunk;
        s.last_fp = fold.last_fp;
        s.chunks_since_round = fold.chunks_since_round;
        s.retry_in = fold.retry_in;
        s.rounds = fold.rounds;
        s.next_era = fold.next_era;
        s.probation_left = fold.probation_left;
        s.prob_cur = fold.prob_cur;
        s.prob_prev = fold.prob_prev;
        s.detector = fold.detector;
        s.n_drift = fold.n_drift;
        s.n_promote = fold.n_promote;
        s.n_reject = fold.n_reject;
        s.n_rollback = fold.n_rollback;
        s.last_loss = fold.last_loss;
        s.events = contents.events;

        s.champion = s.load_champion(fold.champ_era)?;
        s.prev = s.load_champion(fold.prev_era)?;
        s.load_window(&fold.chunk_fps)?;

        // Restore serving state: the registry is process-local, so
        // republish the probation predecessor (rollback target) first,
        // then the current champion on top of it.
        if let Some(reg) = &s.rt.registry {
            if let Some(prev) = &s.prev {
                reg.publish_with(&s.rt.slot, prev.model.clone(), PromoteReason::Manual);
            }
            if let Some(champ) = &s.champion {
                reg.publish_with(&s.rt.slot, champ.model.clone(), PromoteReason::Manual);
            }
        }

        s.finish_pending(fold.progress)?;
        Ok(s)
    }

    /// Opens the stream at `dir` if one exists, otherwise creates it
    /// with `cfg`. When opening, `cfg` must equal the stored config.
    pub fn open_or_create(
        dir: impl Into<PathBuf>,
        cfg: OnlineConfig,
        rt: OnlineRuntime,
    ) -> Result<OnlineSession, OnlineError> {
        let dir = dir.into();
        if rt.storage.exists(&dir.join("online.jsonl")) {
            let s = OnlineSession::open(dir, rt)?;
            let mut stored = s.cfg.clone();
            stored.metric = Some(stored.resolved_metric());
            let mut wanted = cfg;
            wanted.metric = Some(wanted.resolved_metric());
            if stored != wanted {
                return Err(OnlineError::Corrupt(
                    "stream exists with a different config".to_string(),
                ));
            }
            Ok(s)
        } else {
            OnlineSession::create(dir, cfg, rt)
        }
    }

    fn blank(dir: PathBuf, cfg: OnlineConfig, rt: OnlineRuntime, log: EventLog) -> OnlineSession {
        let metric = cfg.resolved_metric();
        let policy = PromotionPolicy::new(cfg.promote_margin);
        let detector = DriftDetector::new(cfg.drift_window, cfg.drift_threshold);
        OnlineSession {
            cfg,
            rt,
            dir,
            log,
            metric,
            policy,
            detector,
            next_chunk: 0,
            last_fp: 0,
            window: VecDeque::new(),
            champion: None,
            prev: None,
            next_era: 1,
            rounds: 0,
            chunks_since_round: 0,
            retry_in: None,
            probation_left: 0,
            prob_cur: 0.0,
            prob_prev: 0.0,
            n_drift: 0,
            n_promote: 0,
            n_reject: 0,
            n_rollback: 0,
            last_loss: None,
            events: Vec::new(),
            wedged: false,
        }
    }

    /// Ingests one chunk and runs the full pipeline on it (see the
    /// module docs). Re-delivering the last chunk (same fingerprint) is
    /// an idempotent no-op returning [`ChunkOutcome::Duplicate`].
    ///
    /// # Errors
    ///
    /// [`OnlineError::SchemaMismatch`] leaves the session usable; any
    /// other error wedges it ([`OnlineError::Wedged`] thereafter) —
    /// in-memory state can no longer be trusted against the journal,
    /// and the caller must [`OnlineSession::open`] a fresh one, which
    /// recovers exactly.
    pub fn push_chunk(&mut self, data: &Dataset) -> Result<ChunkOutcome, OnlineError> {
        if self.wedged {
            return Err(OnlineError::Wedged);
        }
        if data.task() != self.cfg.task || data.n_features() != self.cfg.features {
            return Err(OnlineError::SchemaMismatch {
                expected: format!(
                    "{} x{} features",
                    task_name(self.cfg.task),
                    self.cfg.features
                ),
                got: format!("{} x{} features", task_name(data.task()), data.n_features()),
            });
        }
        if data.n_rows() == 0 {
            return Err(OnlineError::Corrupt("empty chunk".to_string()));
        }
        if self.next_chunk > 0 && data.fingerprint() == self.last_fp {
            return Ok(ChunkOutcome::Duplicate);
        }
        let index = self.next_chunk;
        let result = self
            .persist_chunk(index, data)
            .and_then(|()| self.run_chunk(index, data.clone(), Progress::default()));
        if result.is_err() {
            self.wedged = true;
        }
        result
    }

    /// The committed promotion trace (all events since stream start).
    pub fn events(&self) -> &[OnlineEvent] {
        &self.events
    }

    /// The stream's counters.
    pub fn status(&self) -> StreamStatus {
        StreamStatus {
            chunks: self.next_chunk,
            rounds: self.rounds,
            era: self.champion.as_ref().map_or(0, |c| c.era),
            drift_events: self.n_drift,
            promotions: self.n_promote,
            rejections: self.n_reject,
            rollbacks: self.n_rollback,
            last_loss: self.last_loss,
            probation_left: if self.prev.is_some() {
                self.probation_left
            } else {
                0
            },
            window: self.window.len(),
        }
    }

    /// The stream's config (as stored in the journal header).
    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    /// Whether an earlier failure wedged this session (every push now
    /// returns [`OnlineError::Wedged`]; reopen to recover).
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// The stream directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The serving champion's compiled model, if a champion exists.
    pub fn champion_model(&self) -> Option<&CompiledModel> {
        self.champion.as_ref().map(|c| &c.model)
    }

    /// Raw bytes of the stream journal — the promotion trace the
    /// determinism suite compares across worker counts and crashes.
    pub fn journal_bytes(&self) -> Result<Vec<u8>, OnlineError> {
        Ok(self.rt.storage.read(&self.dir.join("online.jsonl"))?)
    }

    // ------------------------------------------------------------------
    // Pipeline
    // ------------------------------------------------------------------

    /// Runs (or resumes, per `prog`) the pipeline for chunk `index`.
    fn run_chunk(
        &mut self,
        index: usize,
        data: Dataset,
        mut prog: Progress,
    ) -> Result<ChunkOutcome, OnlineError> {
        let fp = data.fingerprint();
        if prog.chunk.is_none() {
            let mut ev = OnlineEvent::new(kind::CHUNK, index);
            ev.fingerprint = fp;
            ev.rows = data.n_rows();
            self.commit(ev)?;
            self.next_chunk = index + 1;
            self.last_fp = fp;
            self.chunks_since_round += 1;
            self.retry_in = self.retry_in.map(|r| r.saturating_sub(1));
        }
        if self.window.back().map(|(i, _)| *i) != Some(index) {
            self.window.push_back((index, data.clone()));
        }
        while self.window.len() > self.cfg.window_chunks {
            self.window.pop_front();
        }
        self.prune_chunk_files(index)?;

        // Prequential champion eval — against the champion serving
        // when the chunk *arrived* (a round later in this chunk may
        // promote a new one).
        let mut champion_loss = None;
        let eval_era = match prog.era_at_start {
            Some(0) => None,
            Some(era) => Some(era),
            None => self.champion.as_ref().map(|c| c.era),
        };
        if let Some(champ_era) = eval_era {
            let loss = match prog.champ_eval {
                Some(loss) => loss,
                None => {
                    let model = self.champion.as_ref().expect("era implies champion");
                    let loss = eval_model(self.metric, &model.model, &data)?;
                    let mut ev = OnlineEvent::new(kind::EVAL, index);
                    ev.era = champ_era;
                    ev.loss = loss;
                    self.commit(ev)?;
                    if self.prev.is_some() && self.probation_left > 0 {
                        self.prob_cur += loss;
                    }
                    self.last_loss = Some(loss);
                    prog.drift_signal = self.detector.observe(loss);
                    loss
                }
            };
            champion_loss = Some(loss);
        }

        // Probation: score the previous champion on the same chunk and
        // decide once the probation window closes. The decision is a
        // pure function of the journaled eval sums, so recovery
        // recomputes it identically.
        let mut rolled_back = false;
        let probation_active = match prog.probation_at_start {
            Some(active) => active,
            None => self.prev.is_some() && self.probation_left > 0,
        };
        if probation_active && self.prev.is_some() && self.probation_left > 0 && !prog.prev_eval {
            let prev = self.prev.as_ref().expect("checked above");
            let prev_era = prev.era;
            let loss = eval_model(self.metric, &prev.model, &data)?;
            let mut ev = OnlineEvent::new(kind::EVAL, index);
            ev.era = prev_era;
            ev.loss = loss;
            self.commit(ev)?;
            self.prob_prev += loss;
            self.probation_left -= 1;
        }
        if self.prev.is_some() && self.probation_left == 0 {
            if self.policy.should_roll_back(self.prob_prev, self.prob_cur) {
                let prev = self.prev.take().expect("checked above");
                let current_era = self.champion.as_ref().map_or(0, |c| c.era);
                let mut ev = OnlineEvent::new(kind::ROLLBACK, index);
                ev.era = prev.era;
                ev.version = prev.era;
                ev.previous = current_era;
                self.commit(ev)?;
                self.n_rollback += 1;
                if let Some(reg) = &self.rt.registry {
                    reg.rollback(&self.rt.slot);
                }
                self.champion = Some(prev);
                self.detector.reset();
                rolled_back = true;
            } else {
                self.prev = None;
            }
        }

        // Round decision. Suppressed while a rollback just happened or
        // probation is still running (`prev` is only Some then) — the
        // last promotion must settle before the next challenger.
        let mut drifted = prog.drift_committed;
        let mut round_outcome = None;
        if let Some((round_id, reason)) = prog.round.clone() {
            if !prog.decided {
                round_outcome = Some(self.complete_round(index, round_id, &reason, true)?);
            }
        } else if !rolled_back && self.prev.is_none() {
            if self.champion.is_none() {
                if self.window.len() >= self.cfg.warmup_chunks {
                    round_outcome = Some(self.start_round(index, "warmup")?);
                }
            } else if let Some(sig) = prog.drift_signal {
                if !prog.drift_committed {
                    let era = self.champion.as_ref().expect("champion exists").era;
                    let mut ev = OnlineEvent::new(kind::DRIFT, index);
                    ev.era = era;
                    ev.baseline = sig.baseline;
                    ev.recent = sig.recent;
                    self.commit(ev)?;
                    self.n_drift += 1;
                }
                drifted = true;
                round_outcome = Some(self.start_round(index, "drift")?);
            } else if self.retry_in == Some(0) {
                // A drift-triggered challenger lost its holdout — almost
                // always because the training window still held the old
                // concept when drift was confirmed. The window has since
                // refreshed with post-shift chunks; try once more.
                round_outcome = Some(self.start_round(index, "retry")?);
            } else if self.cfg.refresh_every > 0
                && self.chunks_since_round >= self.cfg.refresh_every
            {
                round_outcome = Some(self.start_round(index, "scheduled")?);
            }
        }

        Ok(ChunkOutcome::Processed {
            chunk: index,
            champion_loss,
            drifted,
            round: round_outcome,
            rolled_back,
        })
    }

    /// Journals a `round` event and runs the round to its decision.
    fn start_round(&mut self, index: usize, reason: &str) -> Result<RoundOutcome, OnlineError> {
        let round_id = self.rounds + 1;
        let mut ev = OnlineEvent::new(kind::ROUND, index);
        ev.round = round_id;
        ev.reason = reason.to_string();
        self.commit(ev)?;
        self.rounds = round_id;
        self.chunks_since_round = 0;
        self.retry_in = None;
        self.complete_round(index, round_id, reason, false)
    }

    /// Trains a challenger for round `round_id`, scores it against the
    /// champion on the holdout, and journals the promote / reject
    /// decision. `resumed` reattaches a partially-written search
    /// journal instead of starting fresh.
    fn complete_round(
        &mut self,
        index: usize,
        round_id: u64,
        reason: &str,
        resumed: bool,
    ) -> Result<RoundOutcome, OnlineError> {
        let datasets: Vec<&Dataset> = self.window.iter().map(|(_, d)| d).collect();
        let split = datasets
            .len()
            .saturating_sub(self.cfg.holdout_chunks)
            .max(1);
        let train = concat_chunks(&format!("round-{round_id}-train"), &datasets[..split])?;
        let holdout = if split < datasets.len() {
            concat_chunks(&format!("round-{round_id}-holdout"), &datasets[split..])?
        } else {
            // Degenerate single-chunk window: score on the training
            // chunk rather than nothing.
            train.clone()
        };

        let journal_path = self.round_journal_path(round_id);
        self.rt.storage.create_dir_all(&self.dir.join("rounds"))?;
        let settings = self.round_settings(round_id);
        let mut handle = if resumed && self.rt.storage.exists(&journal_path) {
            // A torn or mismatched search journal is recreatable state:
            // fall back to a fresh deterministic search.
            SearchHandle::attach(settings.clone(), &journal_path)
                .unwrap_or_else(|_| SearchHandle::new(settings, &journal_path))
        } else {
            SearchHandle::new(settings, &journal_path)
        };
        let result = match handle.run_to_end(&train, self.cfg.round_trials) {
            Ok(r) => Some(r),
            Err(AutoMlError::NoViableModel) => None,
            Err(e) => return Err(OnlineError::AutoMl(e)),
        };

        let compiled = match &result {
            Some(r) => Some(r.compile().map_err(|e| {
                OnlineError::Corrupt(format!("challenger artifact compile failed: {e}"))
            })?),
            None => None,
        };
        let challenger_loss = match &compiled {
            Some(m) => eval_model(self.metric, m, &holdout)?,
            None => f64::INFINITY,
        };
        let champion_loss = match &self.champion {
            Some(c) => eval_model(self.metric, &c.model, &holdout)?,
            None => f64::INFINITY,
        };

        let promoted =
            compiled.is_some() && self.policy.should_promote(challenger_loss, champion_loss);
        if promoted {
            let model = compiled.expect("promoted implies compiled");
            let era = self.next_era;
            let artifact = self.champion_path(era);
            self.rt
                .storage
                .create_dir_all(&self.dir.join("champions"))?;
            let model_fp = model
                .save_with(self.rt.storage.as_ref(), &artifact)
                .map_err(artifact_err)?;
            let previous_era = self.champion.as_ref().map_or(0, |c| c.era);

            let mut ev = OnlineEvent::new(kind::PROMOTE, index);
            ev.era = era;
            ev.round = round_id;
            ev.loss = challenger_loss;
            ev.baseline = champion_loss;
            ev.reason = reason.to_string();
            ev.version = era;
            ev.previous = previous_era;
            ev.model_fp = model_fp;
            self.commit(ev)?;
            self.n_promote += 1;
            self.next_era = era + 1;

            if let Some(reg) = &self.rt.registry {
                let why = if reason == "drift" || reason == "retry" {
                    PromoteReason::Drift
                } else {
                    PromoteReason::Scheduled
                };
                reg.publish_with(&self.rt.slot, model.clone(), why);
            }
            let old = self.champion.replace(Champion { era, model });
            if let Some(old) = old {
                if self.cfg.probation_chunks > 0 {
                    self.prev = Some(old);
                    self.probation_left = self.cfg.probation_chunks;
                    self.prob_cur = 0.0;
                    self.prob_prev = 0.0;
                }
            }
            self.detector.reset();
        } else {
            let mut ev = OnlineEvent::new(kind::REJECT, index);
            ev.round = round_id;
            ev.loss = challenger_loss;
            ev.baseline = champion_loss;
            ev.reason = reason.to_string();
            self.commit(ev)?;
            self.n_reject += 1;
            self.detector.reset();
            if reason == "drift" {
                // One follow-up once the sliding window is fully
                // post-shift; a rejected retry does not re-arm, so a
                // false alarm costs exactly one extra search.
                self.retry_in = Some(self.cfg.window_chunks.saturating_sub(1));
            }
        }
        Ok(RoundOutcome {
            round: round_id,
            reason: reason.to_string(),
            promoted,
            challenger_loss,
            champion_loss,
        })
    }

    /// The AutoMl settings for challenger round `round_id`: virtual
    /// clock (worker-count independent), per-round derived seed, and a
    /// warm start from the previous round's best configurations.
    fn round_settings(&self, round_id: u64) -> AutoMl {
        let mut settings = AutoMl::new()
            .time_budget(self.cfg.round_budget)
            .max_trials(self.cfg.round_trials)
            .seed(round_seed(self.cfg.seed, round_id))
            .estimators(self.cfg.estimators.clone())
            .metric(self.metric)
            .time_source(TimeSource::Virtual(default_virtual_cost))
            .workers(self.rt.workers.max(1))
            .storage(Arc::clone(&self.rt.storage));
        if round_id > 1 {
            // Warm start (ChaCha's "champion seeds the challengers"):
            // the previous round's journal is complete — rounds finish
            // before the next begins — so this read is identical on
            // the live and recovery paths.
            if let Ok(journal) = Journal::read(self.round_journal_path(round_id - 1)) {
                let points = journal.best_configs();
                if !points.is_empty() {
                    settings = settings.starting_points(points);
                }
            }
        }
        settings
    }

    fn commit(&mut self, ev: OnlineEvent) -> Result<(), OnlineError> {
        self.log.append(&ev)?;
        self.events.push(ev);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durable chunk files
    // ------------------------------------------------------------------

    fn persist_chunk(&mut self, index: usize, data: &Dataset) -> Result<(), OnlineError> {
        let payload = serde_json::to_string(&ChunkPayload::from_dataset(data))
            .map_err(|e| OnlineError::Corrupt(format!("chunk serialize failed: {e}")))?;
        self.rt.storage.create_dir_all(&self.dir.join("chunks"))?;
        flaml_core::atomic_write_file(
            self.rt.storage.as_ref(),
            &self.chunk_path(index),
            payload.as_bytes(),
        )?;
        Ok(())
    }

    fn prune_chunk_files(&mut self, index: usize) -> Result<(), OnlineError> {
        if index >= self.cfg.window_chunks {
            let old = self.chunk_path(index - self.cfg.window_chunks);
            if self.rt.storage.exists(&old) {
                self.rt.storage.remove(&old)?;
            }
        }
        Ok(())
    }

    fn chunk_path(&self, index: usize) -> PathBuf {
        self.dir.join("chunks").join(format!("c{index:06}.json"))
    }

    fn round_journal_path(&self, round_id: u64) -> PathBuf {
        self.dir
            .join("rounds")
            .join(format!("round_{round_id:04}.jsonl"))
    }

    fn champion_path(&self, era: u64) -> PathBuf {
        self.dir
            .join("champions")
            .join(format!("era_{era:04}.artifact.json"))
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Replays the committed events into the scalar state an
    /// uninterrupted session would hold, plus the progress mask of the
    /// last chunk. The drift detector is rebuilt by feeding it the
    /// journaled champion losses — it is a pure function of them.
    fn fold(&self, events: &[OnlineEvent]) -> Result<FoldState, OnlineError> {
        let mut f = FoldState {
            next_chunk: 0,
            last_fp: 0,
            chunks_since_round: 0,
            rounds: 0,
            next_era: 1,
            champ_era: 0,
            prev_era: 0,
            probation_left: 0,
            prob_cur: 0.0,
            prob_prev: 0.0,
            detector: DriftDetector::new(self.cfg.drift_window, self.cfg.drift_threshold),
            retry_in: None,
            n_drift: 0,
            n_promote: 0,
            n_reject: 0,
            n_rollback: 0,
            last_loss: None,
            chunk_fps: BTreeMap::new(),
            progress: Progress::default(),
        };
        // A probation decision that *passes* writes no event; it is
        // implied by any later event. Rollbacks are explicit.
        let settle_probation = |f: &mut FoldState| {
            if f.prev_era != 0 && f.probation_left == 0 {
                f.prev_era = 0;
            }
        };
        for ev in events {
            match ev.kind.as_str() {
                kind::CHUNK => {
                    settle_probation(&mut f);
                    f.next_chunk = ev.chunk + 1;
                    f.last_fp = ev.fingerprint;
                    f.chunks_since_round += 1;
                    f.retry_in = f.retry_in.map(|r| r.saturating_sub(1));
                    f.chunk_fps.insert(ev.chunk, ev.fingerprint);
                    f.progress = Progress {
                        chunk: Some(ev.chunk),
                        era_at_start: Some(f.champ_era),
                        probation_at_start: Some(f.prev_era != 0 && f.probation_left > 0),
                        ..Progress::default()
                    };
                }
                kind::EVAL => {
                    if ev.era == f.champ_era && f.champ_era != 0 {
                        if f.prev_era != 0 && f.probation_left > 0 {
                            f.prob_cur += ev.loss;
                        }
                        f.last_loss = Some(ev.loss);
                        f.progress.champ_eval = Some(ev.loss);
                        f.progress.drift_signal = f.detector.observe(ev.loss);
                    } else if ev.era == f.prev_era && f.prev_era != 0 {
                        f.prob_prev += ev.loss;
                        f.probation_left = f.probation_left.saturating_sub(1);
                        f.progress.prev_eval = true;
                    } else {
                        return Err(OnlineError::Corrupt(format!(
                            "eval event for unknown era {} at chunk {}",
                            ev.era, ev.chunk
                        )));
                    }
                }
                kind::DRIFT => {
                    settle_probation(&mut f);
                    f.n_drift += 1;
                    f.progress.drift_committed = true;
                }
                kind::ROUND => {
                    settle_probation(&mut f);
                    f.rounds = ev.round;
                    f.chunks_since_round = 0;
                    f.retry_in = None;
                    f.progress.round = Some((ev.round, ev.reason.clone()));
                    f.progress.decided = false;
                }
                kind::PROMOTE => {
                    f.n_promote += 1;
                    f.next_era = f.next_era.max(ev.era + 1);
                    if ev.previous != 0 && self.cfg.probation_chunks > 0 {
                        f.prev_era = ev.previous;
                        f.probation_left = self.cfg.probation_chunks;
                        f.prob_cur = 0.0;
                        f.prob_prev = 0.0;
                    } else {
                        f.prev_era = 0;
                        f.probation_left = 0;
                    }
                    f.champ_era = ev.era;
                    f.detector.reset();
                    f.progress.decided = true;
                }
                kind::REJECT => {
                    f.n_reject += 1;
                    f.detector.reset();
                    if ev.reason == "drift" {
                        f.retry_in = Some(self.cfg.window_chunks.saturating_sub(1));
                    }
                    f.progress.decided = true;
                }
                kind::ROLLBACK => {
                    f.n_rollback += 1;
                    f.champ_era = ev.version;
                    f.prev_era = 0;
                    f.probation_left = 0;
                    f.detector.reset();
                }
                other => {
                    return Err(OnlineError::Corrupt(format!(
                        "unknown event kind {other:?} at chunk {}",
                        ev.chunk
                    )))
                }
            }
        }
        Ok(f)
    }

    /// Loads the champion artifact for `era` (0 = none).
    fn load_champion(&self, era: u64) -> Result<Option<Champion>, OnlineError> {
        if era == 0 {
            return Ok(None);
        }
        let model = CompiledModel::load_with(self.rt.storage.as_ref(), &self.champion_path(era))
            .map_err(artifact_err)?;
        Ok(Some(Champion { era, model }))
    }

    /// Reloads the sliding window from the persisted chunk files,
    /// verifying each against its journaled fingerprint.
    fn load_window(&mut self, chunk_fps: &BTreeMap<usize, u64>) -> Result<(), OnlineError> {
        let start = self.next_chunk.saturating_sub(self.cfg.window_chunks);
        for index in start..self.next_chunk {
            let bytes = self.rt.storage.read(&self.chunk_path(index)).map_err(|e| {
                OnlineError::Corrupt(format!("window chunk {index} unreadable: {e}"))
            })?;
            let text = String::from_utf8(bytes)
                .map_err(|_| OnlineError::Corrupt(format!("window chunk {index} not UTF-8")))?;
            let payload: ChunkPayload = serde_json::from_str(&text)
                .map_err(|e| OnlineError::Corrupt(format!("window chunk {index} invalid: {e}")))?;
            let data = payload.into_dataset()?;
            if chunk_fps.get(&index) != Some(&data.fingerprint()) {
                return Err(OnlineError::Corrupt(format!(
                    "window chunk {index} fingerprint mismatch"
                )));
            }
            self.window.push_back((index, data));
        }
        Ok(())
    }

    /// Completes whatever a crash interrupted: the last chunk's
    /// remaining pipeline steps, then a chunk that was persisted but
    /// never journaled.
    fn finish_pending(&mut self, progress: Progress) -> Result<(), OnlineError> {
        if let Some(index) = progress.chunk {
            let data = self
                .window
                .back()
                .filter(|(i, _)| *i == index)
                .map(|(_, d)| d.clone())
                .ok_or_else(|| {
                    OnlineError::Corrupt(format!("last chunk {index} missing from window"))
                })?;
            self.run_chunk(index, data, progress)?;
        }
        let pending = self.chunk_path(self.next_chunk);
        if self.rt.storage.exists(&pending) {
            let bytes = self.rt.storage.read(&pending)?;
            let text = String::from_utf8(bytes)
                .map_err(|_| OnlineError::Corrupt("pending chunk not UTF-8".to_string()))?;
            let payload: ChunkPayload = serde_json::from_str(&text)
                .map_err(|e| OnlineError::Corrupt(format!("pending chunk invalid: {e}")))?;
            let data = payload.into_dataset()?;
            self.run_chunk(self.next_chunk, data, Progress::default())?;
        }
        Ok(())
    }

    /// Removes stale atomic-write temp files a crash left behind.
    fn sweep_stale_tmps(&self) -> Result<(), OnlineError> {
        for sub in ["", "chunks", "rounds", "champions"] {
            let dir = if sub.is_empty() {
                self.dir.clone()
            } else {
                self.dir.join(sub)
            };
            if !self.rt.storage.is_dir(&dir) {
                continue;
            }
            for path in self.rt.storage.scan(&dir)? {
                if is_stale_tmp(&path) {
                    self.rt.storage.remove(&path)?;
                }
            }
        }
        Ok(())
    }
}

fn eval_model(metric: Metric, model: &CompiledModel, data: &Dataset) -> Result<f64, OnlineError> {
    let pred = model.predict(data.view());
    Ok(metric.loss(&pred, data.target())?)
}

fn artifact_err(e: flaml_core::ArtifactError) -> OnlineError {
    OnlineError::Corrupt(format!("champion artifact: {e}"))
}

/// SplitMix64-style mix of the stream seed and a round index, so every
/// round searches with a distinct deterministic seed.
fn round_seed(seed: u64, round_id: u64) -> u64 {
    let mut z = seed ^ round_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_header() {
        let mut cfg = OnlineConfig::new(Task::Binary, 6);
        cfg.seed = 42;
        cfg.refresh_every = 10;
        let back = OnlineConfig::from_header(&cfg.to_header()).unwrap();
        let mut want = cfg.clone();
        want.metric = Some(want.resolved_metric());
        assert_eq!(back, want);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = OnlineConfig::new(Task::Binary, 4);
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.holdout_chunks = bad.window_chunks;
        assert!(matches!(bad.validate(), Err(OnlineError::Config(_))));
        let mut bad = ok.clone();
        bad.warmup_chunks = 1;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.estimators.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn round_seed_is_deterministic_and_spread() {
        assert_eq!(round_seed(7, 3), round_seed(7, 3));
        assert_ne!(round_seed(7, 3), round_seed(7, 4));
        assert_ne!(round_seed(7, 3), round_seed(8, 3));
    }

    #[test]
    fn resolved_metric_defaults_by_task() {
        assert_eq!(
            OnlineConfig::new(Task::Binary, 3).resolved_metric(),
            Metric::LogLoss
        );
        assert_eq!(
            OnlineConfig::new(Task::Regression, 3).resolved_metric(),
            Metric::Mse
        );
        let mut cfg = OnlineConfig::new(Task::Binary, 3);
        cfg.metric = Some(Metric::Accuracy);
        assert_eq!(cfg.resolved_metric(), Metric::Accuracy);
    }
}
