//! Streaming AutoML with champion–challenger promotion (ChaCha).
//!
//! Batch FLAML assumes a fixed dataset; this crate handles the online
//! setting of Wu et al. (ICML 2021): data arrives as a stream of chunks
//! whose underlying concept can shift. An [`OnlineSession`] serves a
//! **champion** model and evaluates it prequentially (test-then-train)
//! on every incoming chunk. A seeded, deterministic [`DriftDetector`]
//! watches the champion's per-chunk loss; when the recent losses shift
//! up, the session launches a **challenger round** — a budgeted
//! [`flaml_core::SearchHandle`] search over a sliding window of recent
//! chunks, warm-started from the previous round's best configurations.
//! A [`PromotionPolicy`] promotes the challenger (through the serving
//! registry's publish path) only when it beats the champion on held-out
//! recent data by a configurable margin, and can roll the promotion
//! back if the new champion underperforms during a short probation.
//!
//! Everything the loop decides — chunk fingerprints, per-chunk evals,
//! drift events, round starts, promotions, rejections, rollbacks — is
//! journaled through the fsync-on-commit [`EventLog`] before taking
//! effect, so a `kill -9` at any point resumes to a **byte-identical
//! promotion trace**: the recovered session replays the committed
//! prefix, finishes the interrupted step, and continues exactly as an
//! uninterrupted run would have.
//!
//! ```no_run
//! use flaml_data::Task;
//! use flaml_online::{OnlineConfig, OnlineRuntime, OnlineSession};
//! use flaml_synth::DriftStream;
//!
//! # fn main() -> Result<(), flaml_online::OnlineError> {
//! let stream = DriftStream::new(7);
//! let cfg = OnlineConfig::new(Task::Binary, stream.features);
//! let mut session = OnlineSession::create("streams/demo", cfg, OnlineRuntime::local())?;
//! for i in 0..32 {
//!     session.push_chunk(&stream.chunk(i))?;
//! }
//! println!("{:?}", session.status());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod chunk;
mod drift;
mod journal;
mod promote;
mod session;

pub use chunk::{concat_chunks, parse_task, task_name, ChunkPayload};
pub use drift::{DriftDetector, DriftSignal};
pub use journal::{
    kind, read_log, EventLog, LogContents, LogError, OnlineEvent, OnlineHeader,
    ONLINE_SCHEMA_VERSION,
};
pub use promote::PromotionPolicy;
pub use session::{
    ChunkOutcome, OnlineConfig, OnlineRuntime, OnlineSession, RoundOutcome, StreamStatus,
};

use flaml_core::{AutoMlError, StorageError};
use flaml_metrics::MetricError;
use std::fmt;

/// Errors from the online layer.
#[derive(Debug)]
pub enum OnlineError {
    /// A storage operation failed; the session is no longer trusted and
    /// must be reopened (see [`OnlineError::Wedged`]).
    Durability(StorageError),
    /// The stream journal could not be read.
    Journal(LogError),
    /// A challenger search failed.
    AutoMl(AutoMlError),
    /// A model evaluation failed.
    Metric(MetricError),
    /// An incoming chunk does not match the stream's schema.
    SchemaMismatch {
        /// The schema the stream was created with.
        expected: String,
        /// The schema of the offending chunk.
        got: String,
    },
    /// Durable state failed validation (bad header, fingerprint
    /// mismatch, missing window chunk…).
    Corrupt(String),
    /// An invalid [`OnlineConfig`].
    Config(String),
    /// A previous push failed mid-chunk; in-memory state may be ahead
    /// of or behind the journal. Reopen the session with
    /// [`OnlineSession::open`] to recover.
    Wedged,
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Durability(e) => write!(f, "storage failure: {e}"),
            OnlineError::Journal(e) => write!(f, "stream journal unreadable: {e}"),
            OnlineError::AutoMl(e) => write!(f, "challenger search failed: {e}"),
            OnlineError::Metric(e) => write!(f, "evaluation failed: {e}"),
            OnlineError::SchemaMismatch { expected, got } => {
                write!(f, "chunk schema mismatch: expected {expected}, got {got}")
            }
            OnlineError::Corrupt(msg) => write!(f, "stream state corrupt: {msg}"),
            OnlineError::Config(msg) => write!(f, "invalid online config: {msg}"),
            OnlineError::Wedged => {
                write!(f, "session wedged by an earlier failure; reopen to recover")
            }
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Durability(e) => Some(e),
            OnlineError::Journal(e) => Some(e),
            OnlineError::AutoMl(e) => Some(e),
            OnlineError::Metric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for OnlineError {
    fn from(e: StorageError) -> OnlineError {
        OnlineError::Durability(e)
    }
}

impl From<MetricError> for OnlineError {
    fn from(e: MetricError) -> OnlineError {
        OnlineError::Metric(e)
    }
}
