//! Durable chunk representation and window assembly.
//!
//! Every ingested chunk is persisted (atomically) before any journal
//! event mentions it, so a resumed session can rebuild its sliding
//! training window from disk without replaying the stream source.
//! [`ChunkPayload`] is the JSON form; [`concat_chunks`] materializes a
//! window of chunks into the single [`Dataset`] a challenger trains on.

use crate::OnlineError;
use flaml_data::{Dataset, FeatureKind, Task};
use serde::{Deserialize, Serialize};

/// Serializable form of one chunk: column-major features, kinds, labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChunkPayload {
    /// Dataset name (informational; excluded from fingerprints).
    pub name: String,
    /// Task name as printed by [`task_name`].
    pub task: String,
    /// Column-major feature matrix.
    pub columns: Vec<Vec<f64>>,
    /// Cardinality per column: 0 = numeric, k > 0 = categorical with k
    /// categories.
    pub cardinalities: Vec<usize>,
    /// Labels, one per row.
    pub target: Vec<f64>,
}

impl ChunkPayload {
    /// Captures a dataset for persistence.
    pub fn from_dataset(data: &Dataset) -> ChunkPayload {
        ChunkPayload {
            name: data.name().to_string(),
            task: task_name(data.task()),
            columns: data.columns().to_vec(),
            cardinalities: data
                .feature_kinds()
                .iter()
                .map(|k| match k {
                    FeatureKind::Numeric => 0,
                    FeatureKind::Categorical { cardinality } => *cardinality,
                })
                .collect(),
            target: data.target().to_vec(),
        }
    }

    /// Rebuilds the dataset. The round trip is bit-exact: the rebuilt
    /// dataset's [`Dataset::fingerprint`] equals the original's.
    pub fn into_dataset(self) -> Result<Dataset, OnlineError> {
        let task = parse_task(&self.task)
            .ok_or_else(|| OnlineError::Corrupt(format!("unknown task {:?}", self.task)))?;
        let kinds = self
            .cardinalities
            .iter()
            .map(|&c| {
                if c == 0 {
                    FeatureKind::Numeric
                } else {
                    FeatureKind::Categorical { cardinality: c }
                }
            })
            .collect();
        Dataset::with_kinds(&self.name, task, self.columns, kinds, self.target)
            .map_err(|e| OnlineError::Corrupt(format!("chunk payload invalid: {e}")))
    }
}

/// Stable task name ("binary" | "regression" | "multiclass:<k>"),
/// matching the server's dataset wire format.
pub fn task_name(task: Task) -> String {
    match task {
        Task::Binary => "binary".to_string(),
        Task::Regression => "regression".to_string(),
        Task::MultiClass(k) => format!("multiclass:{k}"),
    }
}

/// Parses a name as printed by [`task_name`].
pub fn parse_task(s: &str) -> Option<Task> {
    match s {
        "binary" => Some(Task::Binary),
        "regression" => Some(Task::Regression),
        _ => {
            let k: usize = s.strip_prefix("multiclass:")?.parse().ok()?;
            (k >= 2).then_some(Task::MultiClass(k))
        }
    }
}

/// Concatenates a window of schema-identical chunks (same task, same
/// column count and kinds) into one training dataset, rows in chunk
/// order.
///
/// # Errors
///
/// [`OnlineError::SchemaMismatch`] if the chunks disagree on task or
/// column layout; [`OnlineError::Corrupt`] for an empty window.
pub fn concat_chunks(name: &str, chunks: &[&Dataset]) -> Result<Dataset, OnlineError> {
    let first = *chunks
        .first()
        .ok_or_else(|| OnlineError::Corrupt("empty chunk window".to_string()))?;
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); first.n_features()];
    let mut target = Vec::new();
    for chunk in chunks {
        if chunk.task() != first.task()
            || chunk.n_features() != first.n_features()
            || chunk.feature_kinds() != first.feature_kinds()
        {
            return Err(OnlineError::SchemaMismatch {
                expected: format!(
                    "{} x{} features",
                    task_name(first.task()),
                    first.n_features()
                ),
                got: format!(
                    "{} x{} features",
                    task_name(chunk.task()),
                    chunk.n_features()
                ),
            });
        }
        for (dst, src) in columns.iter_mut().zip(chunk.columns()) {
            dst.extend_from_slice(src);
        }
        target.extend_from_slice(chunk.target());
    }
    Dataset::with_kinds(
        name,
        first.task(),
        columns,
        first.feature_kinds().to_vec(),
        target,
    )
    .map_err(|e| OnlineError::Corrupt(format!("window assembly failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(name: &str, base: f64) -> Dataset {
        Dataset::new(
            name,
            Task::Binary,
            vec![vec![base, base + 1.0, base + 2.0, base + 3.0]],
            vec![0.0, 1.0, 0.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn payload_round_trip_is_bit_exact() {
        let d = chunk("c0", 0.5);
        let json = serde_json::to_string(&ChunkPayload::from_dataset(&d)).unwrap();
        let back: ChunkPayload = serde_json::from_str(&json).unwrap();
        let rebuilt = back.into_dataset().unwrap();
        assert_eq!(rebuilt.fingerprint(), d.fingerprint());
        assert_eq!(rebuilt.name(), "c0");
    }

    #[test]
    fn task_names_round_trip() {
        for t in [Task::Binary, Task::Regression, Task::MultiClass(5)] {
            assert_eq!(parse_task(&task_name(t)), Some(t));
        }
        assert_eq!(parse_task("multiclass:1"), None);
        assert_eq!(parse_task("nope"), None);
    }

    #[test]
    fn concat_stacks_rows_in_order() {
        let a = chunk("a", 0.0);
        let b = chunk("b", 10.0);
        let w = concat_chunks("w", &[&a, &b]).unwrap();
        assert_eq!(w.n_rows(), 8);
        assert_eq!(w.column(0)[4], 10.0);
    }

    #[test]
    fn concat_rejects_schema_mismatch() {
        let a = chunk("a", 0.0);
        let b = Dataset::new(
            "b",
            Task::Binary,
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![0.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            concat_chunks("w", &[&a, &b]),
            Err(OnlineError::SchemaMismatch { .. })
        ));
        assert!(concat_chunks("w", &[]).is_err());
    }
}
