//! Property-based tests of the data substrate's invariants.

use flaml_data::{kfold, stratified_kfold, train_test_split, Dataset, Task};
use proptest::prelude::*;

fn arb_regression(max_n: usize) -> impl Strategy<Value = Dataset> {
    (2usize..max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1e6f64..1e6, n),
            proptest::collection::vec(-1e3f64..1e3, n),
        )
            .prop_map(|(col, y)| Dataset::new("p", Task::Regression, vec![col], y).unwrap())
    })
}

fn arb_binary(max_n: usize) -> impl Strategy<Value = Dataset> {
    (4usize..max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-10f64..10.0, n),
            proptest::collection::vec(0u8..2, n),
        )
            .prop_filter("both classes present", |(_, y)| {
                y.contains(&0) && y.contains(&1)
            })
            .prop_map(|(col, y)| {
                Dataset::new(
                    "p",
                    Task::Binary,
                    vec![col],
                    y.into_iter().map(f64::from).collect(),
                )
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn shuffle_is_always_a_permutation(data in arb_regression(200), seed in 0u64..1000) {
        let mut order = data.shuffle_order(seed);
        order.sort_unstable();
        prop_assert_eq!(order, (0..data.n_rows()).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_shuffle_preserves_label_multiset(data in arb_binary(200), seed in 0u64..1000) {
        let shuffled = data.shuffled(seed);
        let count = |d: &Dataset| d.target().iter().filter(|&&v| v == 1.0).count();
        prop_assert_eq!(count(&data), count(&shuffled));
        prop_assert_eq!(data.n_rows(), shuffled.n_rows());
    }

    #[test]
    fn prefix_never_exceeds_rows(data in arb_regression(100), s in 0usize..500) {
        let p = data.prefix(s);
        prop_assert!(p.n_rows() >= 1);
        prop_assert!(p.n_rows() <= data.n_rows());
        prop_assert!(p.n_rows() <= s.max(1));
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..300, k in 2usize..8) {
        prop_assume!(k <= n);
        let folds = kfold(n, k).unwrap();
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for f in &folds {
            for &v in &f.valid {
                prop_assert!(!seen[v], "row {} in two validation folds", v);
                seen[v] = true;
            }
            prop_assert_eq!(f.train.len() + f.valid.len(), n);
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn stratified_kfold_balances_within_one(data in arb_binary(300), k in 2usize..5) {
        prop_assume!(k <= data.n_rows());
        if let Ok(folds) = stratified_kfold(&data, k) {
            let pos_counts: Vec<usize> = folds
                .iter()
                .map(|f| f.valid.iter().filter(|&&i| data.target()[i] == 1.0).count())
                .collect();
            let max = *pos_counts.iter().max().unwrap();
            let min = *pos_counts.iter().min().unwrap();
            prop_assert!(max - min <= 1, "positives per fold: {:?}", pos_counts);
        }
    }

    #[test]
    fn holdout_sides_are_disjoint_and_complete(n in 2usize..500, ratio in 0.05f64..0.95) {
        if let Ok(fold) = train_test_split(n, ratio) {
            prop_assert_eq!(fold.train.len() + fold.valid.len(), n);
            for &v in &fold.valid {
                prop_assert!(!fold.train.contains(&v));
            }
            prop_assert!(!fold.train.is_empty());
            prop_assert!(!fold.valid.is_empty());
        }
    }

    #[test]
    fn select_preserves_values(data in arb_regression(100), seed in 0u64..100) {
        let order = data.shuffle_order(seed);
        let s = data.select(&order);
        for (new_i, &old_i) in order.iter().enumerate() {
            prop_assert_eq!(s.value(new_i, 0), data.value(old_i, 0));
            prop_assert_eq!(s.target()[new_i], data.target()[old_i]);
        }
    }
}
