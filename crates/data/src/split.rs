use crate::{DataError, DatasetView};

/// One cross-validation fold: row indices for training and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Row indices used for training.
    pub train: Vec<usize>,
    /// Row indices used for validation.
    pub valid: Vec<usize>,
}

/// Splits the first `n` row indices into a holdout train/validation pair.
///
/// The *last* `ceil(n * ratio)` rows are held out, matching the paper's
/// holdout on pre-shuffled data with holdout ratio `rho` (default 0.1).
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] if `ratio` is not in `(0, 1)` or if the
/// split would leave either side empty.
pub fn train_test_split(n: usize, ratio: f64) -> Result<Fold, DataError> {
    if !(ratio > 0.0 && ratio < 1.0) {
        return Err(DataError::BadSplit(format!(
            "holdout ratio {ratio} not in (0, 1)"
        )));
    }
    let n_valid = ((n as f64) * ratio).ceil() as usize;
    if n_valid == 0 || n_valid >= n {
        return Err(DataError::BadSplit(format!(
            "holdout of {n_valid} rows from {n} leaves an empty side"
        )));
    }
    let cut = n - n_valid;
    Ok(Fold {
        train: (0..cut).collect(),
        valid: (cut..n).collect(),
    })
}

/// Splits the first `n` row indices into `k` contiguous cross-validation
/// folds.
///
/// Rows are assumed already shuffled (the controller shuffles once up
/// front), so contiguous chunks are random folds.
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] if `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize) -> Result<Vec<Fold>, DataError> {
    if k < 2 {
        return Err(DataError::BadSplit(format!("k = {k} must be at least 2")));
    }
    if k > n {
        return Err(DataError::BadSplit(format!(
            "cannot make {k} folds from {n} rows"
        )));
    }
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let rem = n % k;
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < rem);
        let valid: Vec<usize> = (start..start + len).collect();
        let train: Vec<usize> = (0..start).chain(start + len..n).collect();
        folds.push(Fold { train, valid });
        start += len;
    }
    Ok(folds)
}

/// Stratified k-fold for classification datasets: each fold's validation
/// set receives every k-th row of each class, preserving class ratios.
///
/// Accepts anything convertible into a [`DatasetView`] (`&Dataset`,
/// `&DatasetView`, ...); the fold indices are view-local. Falls back to
/// plain [`kfold`] for regression tasks.
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] if `k < 2` or `k` exceeds the dataset
/// row count.
pub fn stratified_kfold(data: impl Into<DatasetView>, k: usize) -> Result<Vec<Fold>, DataError> {
    let data: DatasetView = data.into();
    let n = data.n_rows();
    let Some(n_classes) = data.task().n_classes() else {
        return kfold(n, k);
    };
    if k < 2 {
        return Err(DataError::BadSplit(format!("k = {k} must be at least 2")));
    }
    if k > n {
        return Err(DataError::BadSplit(format!(
            "cannot make {k} folds from {n} rows"
        )));
    }
    let mut assignment = vec![0usize; n];
    let mut counter = vec![0usize; n_classes];
    for (i, slot) in assignment.iter_mut().enumerate() {
        let c = data.target_at(i) as usize;
        *slot = counter[c] % k;
        counter[c] += 1;
    }
    let mut folds: Vec<Fold> = (0..k)
        .map(|_| Fold {
            train: Vec::new(),
            valid: Vec::new(),
        })
        .collect();
    for (i, &f) in assignment.iter().enumerate() {
        for (g, fold) in folds.iter_mut().enumerate() {
            if g == f {
                fold.valid.push(i);
            } else {
                fold.train.push(i);
            }
        }
    }
    // A fold with an empty side can occur for degenerate k; reject it.
    if folds
        .iter()
        .any(|f| f.train.is_empty() || f.valid.is_empty())
    {
        return Err(DataError::BadSplit(format!(
            "stratified {k}-fold on {n} rows produced an empty fold"
        )));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, Task};

    #[test]
    fn holdout_sizes() {
        let f = train_test_split(100, 0.1).unwrap();
        assert_eq!(f.train.len(), 90);
        assert_eq!(f.valid.len(), 10);
        assert_eq!(f.valid[0], 90);
    }

    #[test]
    fn holdout_rejects_bad_ratio() {
        assert!(train_test_split(10, 0.0).is_err());
        assert!(train_test_split(10, 1.0).is_err());
        assert!(train_test_split(1, 0.5).is_err());
    }

    #[test]
    fn holdout_small_n_rounds_up() {
        let f = train_test_split(5, 0.1).unwrap();
        assert_eq!(f.valid.len(), 1);
    }

    #[test]
    fn kfold_partitions_all_rows() {
        let folds = kfold(103, 5).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.valid.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.valid.len(), 103);
            for &v in &f.valid {
                assert!(!f.train.contains(&v));
            }
        }
    }

    #[test]
    fn kfold_rejects_degenerate() {
        assert!(kfold(10, 1).is_err());
        assert!(kfold(3, 4).is_err());
    }

    #[test]
    fn stratified_preserves_ratio() {
        let n = 100;
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| if i % 5 == 0 { 1.0 } else { 0.0 }).collect();
        let d = Dataset::new("s", Task::Binary, vec![col], y).unwrap();
        let folds = stratified_kfold(&d, 5).unwrap();
        for f in &folds {
            let pos = f.valid.iter().filter(|&&i| d.target()[i] == 1.0).count();
            assert_eq!(pos, 4, "each fold sees 4 of the 20 positives");
        }
    }

    #[test]
    fn stratified_falls_back_for_regression() {
        let col: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y = col.clone();
        let d = Dataset::new("r", Task::Regression, vec![col], y).unwrap();
        let folds = stratified_kfold(&d, 4).unwrap();
        assert_eq!(folds.len(), 4);
    }
}
