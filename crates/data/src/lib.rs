//! Tabular data substrate for the FLAML reproduction.
//!
//! The AutoML search in the paper manipulates training data along three
//! axes: *stratified shuffling* once up front, *prefix subsampling* to get a
//! sample of size `s` (Section 4.2: "to get a sample with size s, it takes
//! the first s tuples of the shuffled data"), and *resampling* via k-fold
//! cross-validation or holdout (Step 0). This crate implements all three,
//! plus the [`Dataset`] container every learner in the ML layer consumes
//! and the zero-copy [`DatasetView`] the search loop derives subsamples,
//! shuffles, and folds from without copying column data.
//!
//! # Example
//!
//! ```
//! use flaml_data::{Dataset, Task};
//!
//! let columns = vec![vec![1.0, 2.0, 3.0, 4.0], vec![0.5, 0.25, 0.125, 0.0625]];
//! let target = vec![0.0, 1.0, 0.0, 1.0];
//! let data = Dataset::new("toy", Task::Binary, columns, target).unwrap();
//! assert_eq!(data.n_rows(), 4);
//! assert_eq!(data.n_features(), 2);
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
mod split;
mod view;

pub use dataset::{Dataset, FeatureKind, Task};
pub use error::DataError;
pub use split::{kfold, stratified_kfold, train_test_split, Fold};
pub use view::DatasetView;
