use std::error::Error;
use std::fmt;

/// Error produced when constructing or manipulating a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The feature columns do not all have the same length as the target.
    RaggedColumns {
        /// Length of the target vector.
        expected: usize,
        /// Index of the offending column.
        column: usize,
        /// Length of the offending column.
        actual: usize,
    },
    /// A dataset must have at least one feature column.
    NoFeatures,
    /// A dataset must have at least one row.
    Empty,
    /// A classification target value is not a valid class index.
    BadLabel {
        /// Row of the offending label.
        row: usize,
        /// The offending value.
        value: f64,
        /// Number of classes implied by the task.
        n_classes: usize,
    },
    /// The number of feature kinds does not match the number of columns.
    KindMismatch {
        /// Number of columns.
        columns: usize,
        /// Number of feature kinds supplied.
        kinds: usize,
    },
    /// A requested sample size or split parameter is out of range.
    BadSplit(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RaggedColumns {
                expected,
                column,
                actual,
            } => write!(
                f,
                "column {column} has {actual} rows but the target has {expected}"
            ),
            DataError::NoFeatures => write!(f, "dataset has no feature columns"),
            DataError::Empty => write!(f, "dataset has no rows"),
            DataError::BadLabel {
                row,
                value,
                n_classes,
            } => write!(
                f,
                "label {value} at row {row} is not an integer in 0..{n_classes}"
            ),
            DataError::KindMismatch { columns, kinds } => write!(
                f,
                "{kinds} feature kinds supplied for {columns} feature columns"
            ),
            DataError::BadSplit(msg) => write!(f, "invalid split: {msg}"),
        }
    }
}

impl Error for DataError {}
