//! Zero-copy row views over shared dataset storage.
//!
//! A [`DatasetView`] is the unit of data the search loop hands to
//! learners: an `Arc` to the immutable column storage of a root
//! [`Dataset`] plus a row selection. Deriving a subsample
//! ([`DatasetView::prefix`]), a fold ([`DatasetView::select`]) or a
//! shuffle ([`Dataset::shuffled_view`]) costs O(rows) for the index
//! vector — never O(rows × features) for copied columns — and cloning a
//! view (e.g. to move it into a worker job) is O(1).
//!
//! A view iterates rows in selection order, so every value sequence a
//! learner observes through a view is identical to what it would observe
//! on the materialized copy [`DatasetView::materialize`] produces; the
//! two fit paths are bit-identical.

use crate::dataset::DatasetCore;
use crate::{Dataset, FeatureKind, Task};
use std::sync::Arc;

/// Which rows of the root storage a view exposes, in order.
#[derive(Debug, Clone)]
enum RowSel {
    /// The first `s` rows of the root storage, in storage order. Lets
    /// hot paths borrow contiguous column slices directly.
    Prefix(usize),
    /// Arbitrary root-row indices, in view order (duplicates allowed,
    /// enabling bootstrap resamples).
    Indices(Arc<[u32]>),
}

/// A zero-copy, clonable view of a [`Dataset`]: shared column storage
/// plus a row selection.
#[derive(Debug, Clone)]
pub struct DatasetView {
    core: Arc<DatasetCore>,
    rows: RowSel,
}

impl DatasetView {
    pub(crate) fn root(core: Arc<DatasetCore>) -> DatasetView {
        let n = core.target.len();
        DatasetView {
            core,
            rows: RowSel::Prefix(n),
        }
    }

    /// Number of rows the view exposes.
    pub fn n_rows(&self) -> usize {
        match &self.rows {
            RowSel::Prefix(s) => *s,
            RowSel::Indices(ix) => ix.len(),
        }
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.core.columns.len()
    }

    /// The prediction task.
    pub fn task(&self) -> Task {
        self.core.task
    }

    /// The root dataset's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The kind of feature column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn feature_kind(&self, j: usize) -> FeatureKind {
        self.core.kinds[j]
    }

    /// All feature kinds.
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        &self.core.kinds
    }

    /// The value of feature `j` at view row `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.core.columns[j][self.root_row(i)]
    }

    /// The target value at view row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_rows()`.
    pub fn target_at(&self, i: usize) -> f64 {
        self.core.target[self.root_row(i)]
    }

    /// Maps a view row index to its root storage row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_rows()`.
    pub fn root_row(&self, i: usize) -> usize {
        match &self.rows {
            RowSel::Prefix(s) => {
                assert!(i < *s, "row {i} out of bounds for a {s}-row view");
                i
            }
            RowSel::Indices(ix) => ix[i] as usize,
        }
    }

    /// The full root storage column `j` (all root rows, not just the
    /// view's selection). Combine with [`DatasetView::root_rows`] for
    /// gather-free column access in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn root_column(&self, j: usize) -> &[f64] {
        &self.core.columns[j]
    }

    /// The full root target vector (all root rows).
    pub fn root_target(&self) -> &[f64] {
        &self.core.target
    }

    /// The view's root-row indices in view order. O(n) for a prefix view
    /// (the identity mapping is materialized), O(n) copy otherwise.
    pub fn root_rows(&self) -> Vec<usize> {
        match &self.rows {
            RowSel::Prefix(s) => (0..*s).collect(),
            RowSel::Indices(ix) => ix.iter().map(|&i| i as usize).collect(),
        }
    }

    /// When the view is a contiguous prefix of root storage, its length;
    /// `None` for index views. A `Some(s)` answer licenses borrowing
    /// `&view.root_column(j)[..s]` directly.
    pub fn as_prefix(&self) -> Option<usize> {
        match &self.rows {
            RowSel::Prefix(s) => Some(*s),
            RowSel::Indices(_) => None,
        }
    }

    /// The target values of the view's rows, gathered in view order.
    pub fn gather_target(&self) -> Vec<f64> {
        match &self.rows {
            RowSel::Prefix(s) => self.core.target[..*s].to_vec(),
            RowSel::Indices(ix) => ix.iter().map(|&i| self.core.target[i as usize]).collect(),
        }
    }

    /// Iterates the values of feature column `j` in view row order.
    pub fn column_values(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        let col = &self.core.columns[j];
        (0..self.n_rows()).map(move |i| col[self.root_row_unchecked(i)])
    }

    fn root_row_unchecked(&self, i: usize) -> usize {
        match &self.rows {
            RowSel::Prefix(_) => i,
            RowSel::Indices(ix) => ix[i] as usize,
        }
    }

    /// The first `s` rows of the view (clamped to `1..=n_rows`), as a new
    /// view. O(1) for prefix views, O(s) for index views.
    pub fn prefix(&self, s: usize) -> DatasetView {
        let s = s.clamp(1, self.n_rows());
        let rows = match &self.rows {
            RowSel::Prefix(_) => RowSel::Prefix(s),
            RowSel::Indices(ix) => RowSel::Indices(ix[..s].to_vec().into()),
        };
        DatasetView {
            core: Arc::clone(&self.core),
            rows,
        }
    }

    /// A new view of the given *view-local* rows, in order (duplicates
    /// allowed). O(rows): only the composed index vector is built.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or any index is out of bounds.
    pub fn select(&self, order: &[usize]) -> DatasetView {
        assert!(!order.is_empty(), "cannot select zero rows");
        let indices: Vec<u32> = order
            .iter()
            .map(|&i| {
                let root = self.root_row(i);
                u32::try_from(root).expect("datasets are limited to u32::MAX rows")
            })
            .collect();
        DatasetView {
            core: Arc::clone(&self.core),
            rows: RowSel::Indices(indices.into()),
        }
    }

    /// Copies the view into an owned [`Dataset`] — exactly the dataset
    /// the copy-based `Dataset::select`/`Dataset::prefix` path would have
    /// produced for the same rows.
    pub fn materialize(&self) -> Dataset {
        let columns = (0..self.n_features())
            .map(|j| self.column_values(j).collect())
            .collect();
        let target = self.gather_target();
        Dataset {
            core: Arc::new(DatasetCore {
                name: self.core.name.clone(),
                task: self.core.task,
                columns,
                kinds: self.core.kinds.clone(),
                target,
            }),
        }
    }

    /// Approximate heap footprint of the view's own row selection in
    /// bytes (the shared column storage is not counted).
    pub fn selection_bytes(&self) -> usize {
        match &self.rows {
            RowSel::Prefix(_) => 0,
            RowSel::Indices(ix) => ix.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Bytes a copy-based materialization of this view would allocate
    /// (features + target as `f64`) — what the zero-copy path saves.
    pub fn materialized_bytes(&self) -> usize {
        self.n_rows() * (self.n_features() + 1) * std::mem::size_of::<f64>()
    }

    /// Whether two views share the same root storage.
    pub fn same_root(&self, other: &DatasetView) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

impl From<&Dataset> for DatasetView {
    fn from(d: &Dataset) -> DatasetView {
        d.view()
    }
}

impl From<Dataset> for DatasetView {
    fn from(d: Dataset) -> DatasetView {
        d.view()
    }
}

impl From<&DatasetView> for DatasetView {
    fn from(v: &DatasetView) -> DatasetView {
        v.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let col0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let col1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new("toy", Task::Binary, vec![col0, col1], y).unwrap()
    }

    #[test]
    fn root_view_matches_dataset() {
        let d = toy(10);
        let v = d.view();
        assert_eq!(v.n_rows(), 10);
        assert_eq!(v.n_features(), 2);
        assert_eq!(v.as_prefix(), Some(10));
        for i in 0..10 {
            assert_eq!(v.value(i, 0), d.value(i, 0));
            assert_eq!(v.target_at(i), d.target()[i]);
        }
    }

    #[test]
    fn view_shares_storage_with_dataset() {
        let d = toy(10);
        let v = d.view();
        assert!(std::ptr::eq(
            v.root_column(0).as_ptr(),
            d.column(0).as_ptr()
        ));
        assert_eq!(v.selection_bytes(), 0);
    }

    #[test]
    fn prefix_view_matches_prefix_copy() {
        let d = toy(20);
        let v = d.view().prefix(7);
        let copy = d.prefix(7);
        assert_eq!(v.n_rows(), copy.n_rows());
        assert_eq!(v.gather_target(), copy.target());
        assert_eq!(
            v.column_values(1).collect::<Vec<_>>(),
            copy.column(1).to_vec()
        );
    }

    #[test]
    fn select_view_matches_select_copy() {
        let d = toy(10);
        let order = [9, 0, 0, 4];
        let v = d.view().select(&order);
        let copy = d.select(&order);
        assert_eq!(v.materialize().fingerprint(), copy.fingerprint());
    }

    #[test]
    fn nested_selection_composes() {
        let d = toy(12);
        // View-local selection on top of a prefix: row i of the prefix is
        // root row i.
        let v = d.view().prefix(6).select(&[5, 1]);
        assert_eq!(v.value(0, 0), 5.0);
        assert_eq!(v.value(1, 0), 1.0);
        // And on top of an index view, selection is view-local again.
        let w = v.select(&[1]);
        assert_eq!(w.value(0, 0), 1.0);
        assert_eq!(w.n_rows(), 1);
    }

    #[test]
    fn shuffled_view_matches_shuffled_copy() {
        let d = toy(50);
        let v = d.shuffled_view(3);
        let copy = d.shuffled(3);
        assert_eq!(v.materialize().fingerprint(), copy.fingerprint());
        assert!(v.same_root(&d.view()));
    }

    #[test]
    fn prefix_of_index_view_truncates_in_view_order() {
        let d = toy(10);
        let v = d.view().select(&[8, 6, 4, 2]).prefix(2);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.value(0, 0), 8.0);
        assert_eq!(v.value(1, 0), 6.0);
    }

    #[test]
    fn materialized_bytes_counts_columns_and_target() {
        let d = toy(10);
        let v = d.view().prefix(4);
        assert_eq!(v.materialized_bytes(), 4 * 3 * 8);
    }

    #[test]
    #[should_panic(expected = "cannot select zero rows")]
    fn empty_selection_panics() {
        let d = toy(4);
        let _ = d.view().select(&[]);
    }
}
