use crate::view::DatasetView;
use crate::DataError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The kind of a feature column.
///
/// Categorical columns store category indices as `f64` values; learners may
/// exploit the distinction (e.g. one-hot encode for linear models). Missing
/// values are represented as `NaN` in either kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Real-valued feature.
    Numeric,
    /// Categorical feature with the given number of categories.
    Categorical {
        /// Number of distinct categories (indices `0..cardinality`).
        cardinality: usize,
    },
}

/// The prediction task a dataset defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Binary classification; labels are 0.0 or 1.0.
    Binary,
    /// Multi-class classification with the given number of classes;
    /// labels are class indices stored as `f64`.
    MultiClass(usize),
    /// Regression; labels are arbitrary finite reals.
    Regression,
}

impl Task {
    /// Number of classes, or `None` for regression.
    pub fn n_classes(&self) -> Option<usize> {
        match self {
            Task::Binary => Some(2),
            Task::MultiClass(k) => Some(*k),
            Task::Regression => None,
        }
    }

    /// Whether this is a classification task.
    pub fn is_classification(&self) -> bool {
        !matches!(self, Task::Regression)
    }
}

/// The shared, immutable storage behind a [`Dataset`] and every
/// [`DatasetView`] derived from it. Never exposed mutably once wrapped in
/// an `Arc`; row subsets are expressed as index views over this storage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct DatasetCore {
    pub(crate) name: String,
    pub(crate) task: Task,
    pub(crate) columns: Vec<Vec<f64>>,
    pub(crate) kinds: Vec<FeatureKind>,
    pub(crate) target: Vec<f64>,
}

/// A column-major, in-memory tabular dataset.
///
/// Feature values are `f64`; missing values are `NaN`. Labels for
/// classification tasks are class indices stored as `f64`. The column-major
/// layout favours the histogram construction done by the tree learners.
///
/// Storage is shared behind an `Arc`: cloning a dataset, or deriving
/// [`DatasetView`]s from it via [`Dataset::view`] /
/// [`Dataset::shuffled_view`], never copies the column data. `Dataset` is
/// a thin constructor for the root view; the row-subset operations
/// ([`Dataset::select`], [`Dataset::prefix`]) still return owned copies
/// for compatibility, while the view equivalents are O(rows).
#[derive(Debug, Clone)]
pub struct Dataset {
    pub(crate) core: Arc<DatasetCore>,
}

// Serialization delegates to the inner core so the on-disk shape stays the
// flat `{name, task, columns, kinds, target}` object it was before the
// storage moved behind an `Arc` (the vendored serde stub has no blanket
// `Arc<T>` impls, and the flat shape is the compatible one anyway).
impl Serialize for Dataset {
    fn to_value(&self) -> serde::Value {
        self.core.to_value()
    }
}

impl<'de> Deserialize<'de> for Dataset {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        DatasetCore::from_value(value).map(|core| Dataset {
            core: Arc::new(core),
        })
    }
}

impl Dataset {
    /// Creates a dataset with all columns marked [`FeatureKind::Numeric`].
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if the columns are ragged, empty, or the labels
    /// are not valid class indices for a classification `task`.
    pub fn new(
        name: impl Into<String>,
        task: Task,
        columns: Vec<Vec<f64>>,
        target: Vec<f64>,
    ) -> Result<Self, DataError> {
        let kinds = vec![FeatureKind::Numeric; columns.len()];
        Self::with_kinds(name, task, columns, kinds, target)
    }

    /// Creates a dataset with explicit per-column feature kinds.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if the columns are ragged, empty, the kinds
    /// vector has the wrong length, or the labels are invalid for `task`.
    pub fn with_kinds(
        name: impl Into<String>,
        task: Task,
        columns: Vec<Vec<f64>>,
        kinds: Vec<FeatureKind>,
        target: Vec<f64>,
    ) -> Result<Self, DataError> {
        if columns.is_empty() {
            return Err(DataError::NoFeatures);
        }
        if target.is_empty() {
            return Err(DataError::Empty);
        }
        if kinds.len() != columns.len() {
            return Err(DataError::KindMismatch {
                columns: columns.len(),
                kinds: kinds.len(),
            });
        }
        for (j, col) in columns.iter().enumerate() {
            if col.len() != target.len() {
                return Err(DataError::RaggedColumns {
                    expected: target.len(),
                    column: j,
                    actual: col.len(),
                });
            }
        }
        if let Some(k) = task.n_classes() {
            for (i, &y) in target.iter().enumerate() {
                if !(y.fract() == 0.0 && y >= 0.0 && (y as usize) < k) {
                    return Err(DataError::BadLabel {
                        row: i,
                        value: y,
                        n_classes: k,
                    });
                }
            }
        }
        Ok(Dataset {
            core: Arc::new(DatasetCore {
                name: name.into(),
                task,
                columns,
                kinds,
                target,
            }),
        })
    }

    /// Dataset name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The prediction task.
    pub fn task(&self) -> Task {
        self.core.task
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.core.target.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.core.columns.len()
    }

    /// The values of feature column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn column(&self, j: usize) -> &[f64] {
        &self.core.columns[j]
    }

    /// All feature columns.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.core.columns
    }

    /// The kind of feature column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n_features()`.
    pub fn feature_kind(&self, j: usize) -> FeatureKind {
        self.core.kinds[j]
    }

    /// All feature kinds.
    pub fn feature_kinds(&self) -> &[FeatureKind] {
        &self.core.kinds
    }

    /// The target vector.
    pub fn target(&self) -> &[f64] {
        &self.core.target
    }

    /// The value of feature `j` at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.core.columns[j][i]
    }

    /// Renames the dataset (builder-style), returning it.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        Arc::make_mut(&mut self.core).name = name.into();
        self
    }

    /// The zero-copy root view over all rows of this dataset. O(1): the
    /// view shares this dataset's column storage.
    pub fn view(&self) -> DatasetView {
        DatasetView::root(Arc::clone(&self.core))
    }

    /// The empirical class distribution, `None` for regression.
    pub fn class_priors(&self) -> Option<Vec<f64>> {
        let k = self.core.task.n_classes()?;
        let mut counts = vec![0usize; k];
        for &y in &self.core.target {
            counts[y as usize] += 1;
        }
        let n = self.n_rows() as f64;
        Some(counts.into_iter().map(|c| c as f64 / n).collect())
    }

    /// A new dataset with rows reordered as `order` (must be a permutation
    /// or a subset of row indices; duplicates are allowed, enabling
    /// bootstrap resamples).
    ///
    /// This copies the selected rows; [`DatasetView::select`] is the
    /// zero-copy equivalent.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `order` is empty.
    pub fn select(&self, order: &[usize]) -> Dataset {
        assert!(!order.is_empty(), "cannot select zero rows");
        let columns = self
            .core
            .columns
            .iter()
            .map(|col| order.iter().map(|&i| col[i]).collect())
            .collect();
        let target = order.iter().map(|&i| self.core.target[i]).collect();
        Dataset {
            core: Arc::new(DatasetCore {
                name: self.core.name.clone(),
                task: self.core.task,
                columns,
                kinds: self.core.kinds.clone(),
                target,
            }),
        }
    }

    /// The first `s` rows (the paper's prefix subsample of shuffled data).
    ///
    /// `s` is clamped to `1..=n_rows`. This copies the prefix;
    /// [`DatasetView::prefix`] is the zero-copy equivalent.
    pub fn prefix(&self, s: usize) -> Dataset {
        let s = s.clamp(1, self.n_rows());
        let columns = self
            .core
            .columns
            .iter()
            .map(|col| col[..s].to_vec())
            .collect();
        Dataset {
            core: Arc::new(DatasetCore {
                name: self.core.name.clone(),
                task: self.core.task,
                columns,
                kinds: self.core.kinds.clone(),
                target: self.core.target[..s].to_vec(),
            }),
        }
    }

    /// A shuffled copy of the dataset.
    ///
    /// For classification tasks the shuffle is *stratified*: within each
    /// class the rows are shuffled, then classes are interleaved so that
    /// every prefix of the result preserves the class ratio (the paper
    /// shuffles stratified by label so prefix samples are unbiased).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let order = self.shuffle_order(seed);
        self.select(&order)
    }

    /// A zero-copy shuffled view: the same row order as
    /// [`Dataset::shuffled`] expressed as an index view over this
    /// dataset's storage, built in O(rows) instead of O(rows × features).
    pub fn shuffled_view(&self, seed: u64) -> DatasetView {
        let order = self.shuffle_order(seed);
        self.view().select(&order)
    }

    /// The row order that [`Dataset::shuffled`] applies.
    pub fn shuffle_order(&self, seed: u64) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = self.n_rows();
        match self.core.task.n_classes() {
            None => {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut rng);
                order
            }
            Some(k) => {
                // Shuffle within classes, then emit rows by repeatedly
                // drawing from the class whose emitted share lags its prior
                // the most: every prefix stays close to stratified.
                let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
                for (i, &y) in self.core.target.iter().enumerate() {
                    by_class[y as usize].push(i);
                }
                for rows in &mut by_class {
                    rows.shuffle(&mut rng);
                }
                let totals: Vec<usize> = by_class.iter().map(Vec::len).collect();
                let mut emitted = vec![0usize; k];
                let mut order = Vec::with_capacity(n);
                for step in 1..=n {
                    // Pick the class with the largest deficit between its
                    // fair share at this step and what it has emitted.
                    let mut best = None;
                    let mut best_deficit = f64::NEG_INFINITY;
                    for c in 0..k {
                        if emitted[c] >= totals[c] {
                            continue;
                        }
                        let fair = totals[c] as f64 * step as f64 / n as f64;
                        let deficit = fair - emitted[c] as f64;
                        if deficit > best_deficit {
                            best_deficit = deficit;
                            best = Some(c);
                        }
                    }
                    let c = best.expect("some class must have rows left");
                    order.push(by_class[c][emitted[c]]);
                    emitted[c] += 1;
                }
                order
            }
        }
    }

    /// `#instances * #features`, the size measure used by the paper's
    /// resampling-strategy rule (Step 0).
    pub fn size_product(&self) -> u64 {
        self.n_rows() as u64 * self.n_features() as u64
    }

    /// A content fingerprint: FNV-1a over the task, shape, and the raw
    /// bits of every feature and target value. Two datasets fingerprint
    /// equal iff they hold bit-identical data for the same task — the
    /// check a trial journal uses to refuse resuming against different
    /// data. The name is deliberately excluded (renames are harmless).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut h = FNV_OFFSET;
        let task_tag: u64 = match self.core.task {
            Task::Binary => 1,
            Task::MultiClass(k) => 2 | ((k as u64) << 8),
            Task::Regression => 3,
        };
        h = eat(h, &task_tag.to_le_bytes());
        h = eat(h, &(self.n_rows() as u64).to_le_bytes());
        h = eat(h, &(self.n_features() as u64).to_le_bytes());
        for (col, kind) in self.core.columns.iter().zip(&self.core.kinds) {
            let kind_tag: u64 = match kind {
                FeatureKind::Numeric => 0,
                FeatureKind::Categorical { cardinality } => 1 | ((*cardinality as u64) << 8),
            };
            h = eat(h, &kind_tag.to_le_bytes());
            for &v in col {
                h = eat(h, &v.to_bits().to_le_bytes());
            }
        }
        for &y in &self.core.target {
            h = eat(h, &y.to_bits().to_le_bytes());
        }
        h
    }

    /// Number of distinct label values present (for classification; the
    /// count of classes that actually occur, which can be smaller than
    /// the task's nominal class count). `None` for regression.
    pub fn distinct_labels(&self) -> Option<usize> {
        let k = self.core.task.n_classes()?;
        let mut seen = vec![false; k];
        for &y in &self.core.target {
            seen[y as usize] = true;
        }
        Some(seen.into_iter().filter(|&s| s).count())
    }

    /// Indices of feature columns that carry no signal: columns whose
    /// non-NaN values are all equal (constant) or that contain no non-NaN
    /// value at all. Such columns cannot inform any split or coefficient,
    /// and an all-NaN column can push imputation-free learners into
    /// producing NaN losses.
    pub fn degenerate_columns(&self) -> Vec<usize> {
        self.core
            .columns
            .iter()
            .enumerate()
            .filter(|(_, col)| {
                let mut first = None;
                for &v in col.iter() {
                    if v.is_nan() {
                        continue;
                    }
                    match first {
                        None => first = Some(v),
                        Some(f) if v != f => return false,
                        Some(_) => {}
                    }
                }
                true
            })
            .map(|(j, _)| j)
            .collect()
    }

    /// A copy of the dataset without the feature columns in `drop`
    /// (indices into `0..n_features`, duplicates and any order allowed).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NoFeatures`] if every column would be
    /// dropped, so a sanitization pass can never produce a featureless
    /// dataset.
    pub fn drop_columns(&self, drop: &[usize]) -> Result<Dataset, DataError> {
        let dropped: std::collections::BTreeSet<usize> = drop.iter().copied().collect();
        let keep: Vec<usize> = (0..self.n_features())
            .filter(|j| !dropped.contains(j))
            .collect();
        if keep.is_empty() {
            return Err(DataError::NoFeatures);
        }
        Ok(Dataset {
            core: Arc::new(DatasetCore {
                name: self.core.name.clone(),
                task: self.core.task,
                columns: keep.iter().map(|&j| self.core.columns[j].clone()).collect(),
                kinds: keep.iter().map(|&j| self.core.kinds[j]).collect(),
                target: self.core.target.clone(),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, task: Task) -> Dataset {
        let col0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let col1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let target: Vec<f64> = match task {
            Task::Regression => (0..n).map(|i| i as f64 * 0.5).collect(),
            Task::Binary => (0..n).map(|i| (i % 2) as f64).collect(),
            Task::MultiClass(k) => (0..n).map(|i| (i % k) as f64).collect(),
        };
        Dataset::new("toy", task, vec![col0, col1], target).unwrap()
    }

    #[test]
    fn new_validates_ragged() {
        let err = Dataset::new(
            "bad",
            Task::Regression,
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![0.0, 1.0],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::RaggedColumns { column: 1, .. }));
    }

    #[test]
    fn new_validates_labels() {
        let err =
            Dataset::new("bad", Task::Binary, vec![vec![1.0, 2.0]], vec![0.0, 2.0]).unwrap_err();
        assert!(matches!(err, DataError::BadLabel { row: 1, .. }));
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Dataset::new("e", Task::Regression, vec![], vec![1.0]).unwrap_err(),
            DataError::NoFeatures
        );
        assert_eq!(
            Dataset::new("e", Task::Regression, vec![vec![]], vec![]).unwrap_err(),
            DataError::Empty
        );
    }

    #[test]
    fn kinds_length_checked() {
        let err = Dataset::with_kinds(
            "bad",
            Task::Regression,
            vec![vec![1.0]],
            vec![FeatureKind::Numeric, FeatureKind::Numeric],
            vec![1.0],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::KindMismatch { .. }));
    }

    #[test]
    fn select_reorders_rows() {
        let d = toy(4, Task::Regression);
        let s = d.select(&[3, 1]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.value(0, 0), 3.0);
        assert_eq!(s.value(1, 0), 1.0);
        assert_eq!(s.target(), &[1.5, 0.5]);
    }

    #[test]
    fn select_allows_duplicates_for_bootstrap() {
        let d = toy(3, Task::Regression);
        let s = d.select(&[0, 0, 2]);
        assert_eq!(s.column(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn prefix_clamps() {
        let d = toy(10, Task::Regression);
        assert_eq!(d.prefix(3).n_rows(), 3);
        assert_eq!(d.prefix(0).n_rows(), 1);
        assert_eq!(d.prefix(99).n_rows(), 10);
    }

    #[test]
    fn clone_shares_storage() {
        let d = toy(10, Task::Regression);
        let c = d.clone();
        assert!(std::ptr::eq(d.column(0).as_ptr(), c.column(0).as_ptr()));
    }

    #[test]
    fn renamed_does_not_disturb_other_handles() {
        let d = toy(5, Task::Regression);
        let original = d.clone();
        let renamed = d.renamed("other");
        assert_eq!(original.name(), "toy");
        assert_eq!(renamed.name(), "other");
        assert_eq!(original.column(0), renamed.column(0));
    }

    #[test]
    fn serde_round_trip_keeps_the_flat_shape() {
        let d = toy(4, Task::Binary);
        let value = d.to_value();
        // The Arc indirection must not leak into the serialized shape.
        let fields = value.as_obj().expect("dataset serializes as an object");
        assert!(fields.iter().any(|(k, _)| k == "columns"));
        let back = Dataset::from_value(&value).unwrap();
        assert_eq!(back.fingerprint(), d.fingerprint());
        assert_eq!(back.name(), d.name());
    }

    #[test]
    fn shuffle_is_permutation() {
        let d = toy(100, Task::Regression);
        let mut order = d.shuffle_order(7);
        order.sort_unstable();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let d = toy(50, Task::Binary);
        assert_eq!(d.shuffle_order(1), d.shuffle_order(1));
        assert_ne!(d.shuffle_order(1), d.shuffle_order(2));
    }

    #[test]
    fn stratified_shuffle_balances_prefixes() {
        // 90/10 imbalanced binary labels: every prefix of the shuffle should
        // contain the minority class at roughly its prior.
        let n = 1000;
        let col: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let target: Vec<f64> = (0..n).map(|i| if i < 100 { 1.0 } else { 0.0 }).collect();
        let d = Dataset::new("imb", Task::Binary, vec![col], target).unwrap();
        let s = d.shuffled(3);
        for &prefix in &[50usize, 100, 200, 500] {
            let p = s.prefix(prefix);
            let minority = p.target().iter().filter(|&&y| y == 1.0).count() as f64;
            let ratio = minority / prefix as f64;
            assert!(
                (ratio - 0.1).abs() < 0.03,
                "prefix {prefix} minority ratio {ratio}"
            );
        }
    }

    #[test]
    fn class_priors_sum_to_one() {
        let d = toy(9, Task::MultiClass(3));
        let p = d.class_priors().unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_has_no_priors() {
        assert!(toy(5, Task::Regression).class_priors().is_none());
    }

    #[test]
    fn size_product_matches() {
        assert_eq!(toy(7, Task::Regression).size_product(), 14);
    }

    #[test]
    fn distinct_labels_counts_present_classes() {
        let d = Dataset::new(
            "one-class",
            Task::Binary,
            vec![vec![1.0, 2.0, 3.0]],
            vec![1.0, 1.0, 1.0],
        )
        .unwrap();
        assert_eq!(d.distinct_labels(), Some(1));
        assert_eq!(toy(10, Task::Binary).distinct_labels(), Some(2));
        assert_eq!(toy(10, Task::Regression).distinct_labels(), None);
    }

    #[test]
    fn degenerate_columns_finds_constant_and_all_nan() {
        let d = Dataset::new(
            "deg",
            Task::Regression,
            vec![
                vec![1.0, 2.0, 3.0],                // informative
                vec![5.0, 5.0, 5.0],                // constant
                vec![f64::NAN, f64::NAN, f64::NAN], // all missing
                vec![7.0, f64::NAN, 7.0],           // constant modulo NaN
            ],
            vec![0.0, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(d.degenerate_columns(), vec![1, 2, 3]);
    }

    #[test]
    fn drop_columns_keeps_the_rest_aligned() {
        let d = toy(5, Task::Binary);
        let kept = d.drop_columns(&[0]).unwrap();
        assert_eq!(kept.n_features(), 1);
        assert_eq!(kept.column(0), d.column(1));
        assert_eq!(kept.target(), d.target());
    }

    #[test]
    fn drop_all_columns_is_an_error() {
        let d = toy(5, Task::Binary);
        assert_eq!(d.drop_columns(&[0, 1]).unwrap_err(), DataError::NoFeatures);
    }
}
