#!/usr/bin/env python3
"""Merges per-group fig5 result files into bench_results/fig5.json so
fig6_boxplot and table9_smaller_budget can consume one file.

Usage: python3 scripts/merge_fig5.py
"""
import json
import os

parts = []
for group in ("binary", "multiclass", "regression"):
    path = f"bench_results/fig5_{group}.json"
    if os.path.exists(path):
        with open(path) as f:
            parts.extend(json.load(f))
    else:
        print(f"warning: {path} missing")

with open("bench_results/fig5.json", "w") as f:
    json.dump(parts, f, indent=2)
print(f"merged {len(parts)} results into bench_results/fig5.json")
