#!/bin/bash
cargo run -q -p flaml-bench --bin fig7_ablation -- --budget 5 --seeds 2 > experiments_raw/fig7.txt 2>/dev/null
cargo run -q -p flaml-bench --bin table4_selectivity -- --budget 4 > experiments_raw/table4.txt 2>/dev/null
echo "stage_d done" > experiments_raw/stage_d.done
