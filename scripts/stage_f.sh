#!/bin/bash
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt | tail -5
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | grep -c "test result: ok"
echo "stage_f done" > experiments_raw/stage_f.done
