#!/bin/bash
cargo run -q -p flaml-bench --bin fig5_scores -- --full --per-group 3 --budgets 0.3,1.2,5 --rf-budget 2 --group regression > experiments_raw/fig5_regression.txt 2> experiments_raw/fig5_regression.log
echo "rc=$?" >> experiments_raw/fig5_regression.log
