#!/bin/bash
cargo run -q -p flaml-bench --bin fig1_anytime -- --full --budget 8 > experiments_raw/fig1.txt 2>/dev/null
cargo run -q -p flaml-bench --bin fig4_eci -- --full --budget 8 > experiments_raw/fig4.txt 2>/dev/null
cargo run -q -p flaml-bench --bin table3_case_study -- --full --budget 8 > experiments_raw/table3.txt 2>/dev/null
cargo run -q -p flaml-bench --bin table5_space > experiments_raw/table5.txt 2>/dev/null
echo "stage_e done" > experiments_raw/stage_e.done
