#!/bin/bash
set -x
cargo run -q -p flaml-bench --bin fig5_scores -- --full --per-group 3 --budgets 0.3,1.2,5 --rf-budget 2 --group multiclass > experiments_raw/fig5_multiclass.txt 2> experiments_raw/fig5_multiclass.log
echo "rc=$?" >> experiments_raw/fig5_multiclass.log
