#!/bin/bash
python3 scripts/merge_fig5.py
cargo run -q -p flaml-bench --bin fig6_boxplot > experiments_raw/fig6.txt 2>/dev/null
cargo run -q -p flaml-bench --bin table9_smaller_budget > experiments_raw/table9.txt 2>/dev/null
cargo run -q -p flaml-bench --bin fig8_ablation_all -- --budgets 0.3,1,3 > experiments_raw/fig8.txt 2> experiments_raw/fig8.log
echo "stage_c rc=$?" >> experiments_raw/fig8.log
