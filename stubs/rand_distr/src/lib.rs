//! Offline stand-in for `rand_distr`: `Normal` and `StandardNormal` via
//! Box-Muller over the stub `rand` generator.

use rand::Rng;

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid normal parameters")
    }
}

impl std::error::Error for NormalError {}

#[derive(Debug, Clone, Copy)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u1 in (0, 1] to keep ln finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StandardNormal.sample(rng)
    }
}
