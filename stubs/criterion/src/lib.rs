//! Offline stand-in for `criterion`: runs each benchmark body once so the
//! bench binaries compile and smoke-run; no measurement, no reports.

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher;

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        eprintln!("bench (stub, single pass): {name}");
        f(&mut Bencher);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
