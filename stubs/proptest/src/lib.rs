//! Offline stand-in for `proptest`: strategies really sample values and
//! `proptest!` expands to real `#[test]` functions, so property bodies
//! execute in offline builds too. Unlike real proptest there is no
//! shrinking and no persisted failure seeds — cases come from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly across runs.
//!
//! Only the surface this workspace uses is implemented: range strategies
//! over the numeric primitives, `collection::vec`, `Just`, tuple
//! strategies, `prop_map` / `prop_flat_map` / `prop_filter`, `boxed`,
//! `prop_oneof!`, and the assertion/assumption macros.

/// Cases per property; `#![proptest_config(...)]` is accepted and ignored.
pub const CASES: usize = 32;

/// SplitMix64, seeded from the test's name: deterministic, distinct
/// streams per test, and zero dependencies.
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((self.unit() * n as f64) as usize).min(n - 1)
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;

    /// How many rejections a `prop_filter` tolerates before giving up on
    /// this case (the driver then just draws a fresh case).
    const FILTER_RETRIES: usize = 100;

    pub trait Strategy: Sized {
        type Value;

        /// Draw one value; `None` means a filter rejected every attempt.
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F, T> {
            Map(self, f, PhantomData)
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> FlatMap<Self, F, S2> {
            FlatMap(self, f, PhantomData)
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(self, _reason: &str, f: F) -> Filter<Self, F> {
            Filter(self, f)
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    pub struct Map<S, F, T>(S, F, PhantomData<T>);

    impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F, T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            self.0.sample(rng).map(&self.1)
        }
    }

    pub struct FlatMap<S, F, S2>(S, F, PhantomData<S2>);

    impl<S: Strategy, F: Fn(S::Value) -> S2, S2: Strategy> Strategy for FlatMap<S, F, S2> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let outer = self.0.sample(rng)?;
            (self.1)(outer).sample(rng)
        }
    }

    pub struct Filter<S, F>(S, F);

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = self.0.sample(rng) {
                    if (self.1)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    #[allow(clippy::type_complexity)]
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> Option<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            (self.0)(rng)
        }
    }

    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "Union requires at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            self.0[rng.below(self.0.len())].sample(rng)
        }
    }

    pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        s.boxed()
    }

    /// Numeric types usable as `lo..hi` / `lo..=hi` range strategies.
    pub trait ArbRange: Copy {
        /// Uniform draw from `[lo, hi)` given `u` in `[0, 1)`.
        fn lerp(lo: Self, hi: Self, u: f64) -> Self;
        /// Uniform draw from `[lo, hi]` given `u` in `[0, 1)`.
        fn lerp_incl(lo: Self, hi: Self, u: f64) -> Self;
    }

    macro_rules! arb_range_int {
        ($($t:ty),*) => {$(
            impl ArbRange for $t {
                fn lerp(lo: Self, hi: Self, u: f64) -> Self {
                    let v = ((lo as f64) + ((hi as f64) - (lo as f64)) * u).floor();
                    (v.max(lo as f64).min((hi as f64) - 1.0)) as $t
                }

                fn lerp_incl(lo: Self, hi: Self, u: f64) -> Self {
                    let v = ((lo as f64) + ((hi as f64) + 1.0 - (lo as f64)) * u).floor();
                    (v.max(lo as f64).min(hi as f64)) as $t
                }
            }
        )*};
    }

    arb_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! arb_range_float {
        ($($t:ty),*) => {$(
            impl ArbRange for $t {
                fn lerp(lo: Self, hi: Self, u: f64) -> Self {
                    ((lo as f64) + ((hi as f64) - (lo as f64)) * u) as $t
                }

                fn lerp_incl(lo: Self, hi: Self, u: f64) -> Self {
                    Self::lerp(lo, hi, u)
                }
            }
        )*};
    }

    arb_range_float!(f32, f64);

    impl<T: ArbRange> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::lerp(self.start, self.end, rng.unit()))
        }
    }

    impl<T: ArbRange> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::lerp_incl(*self.start(), *self.end(), rng.unit()))
        }
    }

    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy!((A 0)(A 0, B 1)(A 0, B 1, C 2)(A 0, B 1, C 2, D 3)(A 0, B 1, C 2, D 3, E 4));
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive length bounds for `vec`.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi.saturating_sub(self.size.lo);
            let len = self.size.lo + rng.below(span + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: len.into(),
        }
    }
}

/// Expands each `fn name(pat in strategy, ...) { body }` into a real
/// `#[test]` running [`CASES`] deterministic cases. An optional leading
/// `#![proptest_config(...)]` is accepted and ignored (case count is
/// fixed here).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($($cfg:tt)*)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
            let mut __proptest_ran = 0usize;
            let mut __proptest_attempts = 0usize;
            while __proptest_ran < $crate::CASES {
                __proptest_attempts += 1;
                assert!(
                    __proptest_attempts <= $crate::CASES * 50,
                    "proptest stub: strategies for `{}` rejected too many inputs",
                    stringify!($name),
                );
                $(
                    let $p = match $crate::strategy::Strategy::sample(
                        &($s),
                        &mut __proptest_rng,
                    ) {
                        Some(v) => v,
                        None => continue,
                    };
                )+
                __proptest_ran += 1;
                $body
            }
        }
        $crate::__proptest_fns! { $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::box_strategy($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

/// Skips the current case when the assumption fails; the driver loop
/// draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
