//! Offline stand-in for `serde_derive`: hand-rolled token parsing (no
//! `syn`/`quote` in an offline build) that generates field-wise
//! `to_value` / `from_value` impls against the companion `serde` stub's
//! `Value` model. Supports what this workspace derives on: non-generic
//! structs with named fields, and enums with unit, named-field, and
//! tuple variants. `#[serde(default)]` on a field falls back to
//! `Default::default()` when the field is absent; other `#[serde(...)]`
//! attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Consumes attributes (`# [ ... ]`) at the cursor; reports whether any
/// of them was `#[serde(default)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        let Some(TokenTree::Group(attr)) = tokens.next() else {
            panic!("serde stub derive: `#` not followed by an attribute group");
        };
        let mut inner = attr.stream().into_iter();
        if let Some(TokenTree::Ident(name)) = inner.next() {
            if name.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    has_default |= args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"));
                }
            }
        }
    }
    has_default
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Consumes tokens until a comma at angle-bracket depth zero (a field's
/// type, or an enum discriminant), leaving the cursor after the comma.
fn skip_to_field_end(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(name)) => {
                match tokens.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
                }
                skip_to_field_end(&mut tokens);
                fields.push(Field {
                    name: name.to_string(),
                    default,
                });
            }
            None => return fields,
            other => panic!("serde stub derive: unexpected token in fields: {other:?}"),
        }
    }
}

/// Counts the fields of a tuple variant: comma-separated types at
/// angle-bracket depth zero.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for token in stream {
        saw_token = true;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_token = false;
                }
                _ => {}
            }
        }
    }
    count + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut tokens);
        let Some(token) = tokens.next() else {
            return variants;
        };
        let TokenTree::Ident(name) = token else {
            panic!("serde stub derive: expected variant name, got {token:?}");
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let TokenTree::Group(g) = tokens.next().unwrap() else {
                    unreachable!()
                };
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let TokenTree::Group(g) = tokens.next().unwrap() else {
                    unreachable!()
                };
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Consume a discriminant (`= expr`) and/or the separating comma.
        skip_to_field_end(&mut tokens);
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
}

fn parse_item(input: TokenStream) -> (String, Body) {
    let mut tokens = input.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let Some(token) = tokens.next() else {
            panic!("serde stub derive: no struct or enum found");
        };
        let TokenTree::Ident(ident) = token else {
            continue;
        };
        let word = ident.to_string();
        if word != "struct" && word != "enum" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("serde stub derive: missing type name");
        };
        let body = match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                if word == "struct" {
                    Body::Struct(parse_named_fields(g.stream()))
                } else {
                    Body::Enum(parse_variants(g.stream()))
                }
            }
            other => panic!(
                "serde stub derive: only non-generic braced structs and enums \
                 are supported, got {other:?} after `{word} {name}`"
            ),
        };
        return (name.to_string(), body);
    }
}

fn struct_to_value(fields: &[Field]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n})),",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Obj(::std::vec![{entries}])")
}

/// `name: match ...` initializers for a braced literal of `ty` built from
/// the object entries bound to `fields_var`.
fn field_inits(ty: &str, fields: &[Field], fields_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fallback = if f.default {
                "::core::default::Default::default()".to_owned()
            } else {
                format!(
                    "return ::core::result::Result::Err(\
                     ::serde::DeError::missing_field(\"{ty}\", \"{n}\"))",
                    n = f.name
                )
            };
            format!(
                "{n}: match ::serde::Value::field({fields_var}, \"{n}\") {{\
                   ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\
                   ::core::option::Option::None => {fallback},\
                 }},",
                n = f.name
            )
        })
        .collect()
}

fn enum_to_value(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                VariantKind::Named(fields) => {
                    let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{n}\"), \
                                 ::serde::Serialize::to_value({n})),",
                                n = f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![\
                           (::std::string::String::from(\"{vn}\"), \
                            ::serde::Value::Obj(::std::vec![{entries}]))]),",
                        binds = binds.join(", ")
                    )
                }
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let payload = if *n == 1 {
                        "::serde::Serialize::to_value(x0)".to_owned()
                    } else {
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!("::serde::Value::Arr(::std::vec![{items}])")
                    };
                    format!(
                        "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![\
                           (::std::string::String::from(\"{vn}\"), {payload})]),",
                        binds = binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {arms} }}")
}

fn enum_from_value(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            let body = match &v.kind {
                VariantKind::Unit => return None,
                VariantKind::Named(fields) => {
                    let inits = field_inits(&format!("{name}::{vn}"), fields, "inner");
                    format!(
                        "let inner = payload.as_obj().ok_or_else(|| \
                           ::serde::DeError::expected(\"an object\", payload))?;\
                         ::core::result::Result::Ok({name}::{vn} {{ {inits} }})"
                    )
                }
                VariantKind::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}::{vn}(\
                       ::serde::Deserialize::from_value(payload)?))"
                ),
                VariantKind::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = payload.as_arr().ok_or_else(|| \
                           ::serde::DeError::expected(\"an array\", payload))?;\
                         if items.len() != {n} {{\
                           return ::core::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"expected {n} elements for {name}::{vn}, \
                                             found {{}}\", items.len())));\
                         }}\
                         ::core::result::Result::Ok({name}::{vn}({gets}))",
                        gets = gets.join(", ")
                    )
                }
            };
            Some(format!("\"{vn}\" => {{ {body} }},"))
        })
        .collect();
    format!(
        "match value {{\
           ::serde::Value::Str(s) => match s.as_str() {{\
             {unit_arms}\
             other => ::core::result::Result::Err(\
               ::serde::DeError::unknown_variant(\"{name}\", other)),\
           }},\
           ::serde::Value::Obj(fields) if fields.len() == 1 => {{\
             let (tag, payload) = &fields[0];\
             match tag.as_str() {{\
               {data_arms}\
               other => ::core::result::Result::Err(\
                 ::serde::DeError::unknown_variant(\"{name}\", other)),\
             }}\
           }},\
           _ => ::core::result::Result::Err(::serde::DeError::expected(\
             \"a variant name or single-key object\", value)),\
         }}"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let ser_body = match &body {
        Body::Struct(fields) => struct_to_value(fields),
        Body::Enum(variants) => enum_to_value(&name, variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\
           fn to_value(&self) -> ::serde::Value {{ {ser_body} }}\
         }}"
    );
    code.parse()
        .expect("serde stub derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let de_body = match &body {
        Body::Struct(fields) => {
            let inits = field_inits(&name, fields, "fields");
            format!(
                "let fields = value.as_obj().ok_or_else(|| \
                   ::serde::DeError::expected(\"an object\", value))?;\
                 ::core::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Enum(variants) => enum_from_value(&name, variants),
    };
    let code = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
           fn from_value(value: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{ {de_body} }}\
         }}"
    );
    code.parse()
        .expect("serde stub derive: generated Deserialize impl failed to parse")
}
