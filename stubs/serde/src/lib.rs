//! Offline stand-in for `serde`, implementing only the surface this
//! workspace uses: `Serialize` / `Deserialize` traits (plus derives from
//! the companion `serde_derive` stub) over a small JSON-like [`Value`]
//! model. The companion `serde_json` stub renders and parses that model,
//! giving real round-trip (de)serialization without the registry crates.
//!
//! Deviations from real serde, by design of a stub:
//! - the traits expose `to_value` / `from_value` directly instead of the
//!   visitor-based data model;
//! - non-finite floats round-trip (rendered as `Infinity` / `-Infinity` /
//!   `NaN` tokens) instead of degrading to `null` — trial records carry
//!   the `+inf` failure sentinel and must survive a round trip;
//! - only `#[serde(default)]` among the field attributes has an effect.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value: the intermediate representation both traits target.
///
/// Object keys keep insertion order so serialized output is deterministic
/// (the trace-equality tests compare rendered trial logs byte-for-byte).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Floating-point numbers (including the non-finite sentinels).
    Num(f64),
    /// Unsigned integers, carried exactly: dataset fingerprints and
    /// derived trial seeds are arbitrary `u64` bit patterns that an
    /// `f64` carrier would silently round above 2^53.
    UInt(u64),
    /// Negative integers, carried exactly (non-negative signed values
    /// normalize to [`Value::UInt`]).
    Int(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is one (or a float
    /// with an integral value that fits).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an exact signed integer, if it is one (or a float
    /// with an integral value that fits).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Field lookup in an object value; used by derived `from_value`.
    pub fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, found: &Value) -> DeError {
        let found = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Num(_) | Value::UInt(_) | Value::Int(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        };
        DeError(format!("expected {what}, found {found}"))
    }

    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` for {ty}"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! uint_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("an unsigned integer", value))?;
                Ok(n as $t)
            }
        }
    )*};
}

macro_rules! int_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Non-negative values normalize to UInt so a signed and
                // an unsigned field holding the same small count render
                // and compare identically.
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("an integer", value))?;
                Ok(n as $t)
            }
        }
    )*};
}

macro_rules! float_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_num().ok_or_else(|| DeError::expected("a number", value))?;
                Ok(n as $t)
            }
        }
    )*};
}

uint_primitives!(u8, u16, u32, u64, u128, usize);
int_primitives!(i8, i16, i32, i64, i128, isize);
float_primitives!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("a boolean", value)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("a one-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("a one-char string", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_arr()
            .ok_or_else(|| DeError::expected("an array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

/// Maps serialize as objects, so keys must be strings (real serde_json
/// likewise rejects non-string keys at serialization time).
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_obj()
            .ok_or_else(|| DeError::expected("an object", value))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuples {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = value.as_arr().ok_or_else(|| DeError::expected("an array", value))?;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected an array of {LEN} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($n::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuples!((A 0)(A 0, B 1)(A 0, B 1, C 2)(A 0, B 1, C 2, D 3));
