//! Offline stand-in for `serde_json`: renders and parses the companion
//! `serde` stub's [`Value`] model as JSON text, giving real round-trip
//! (de)serialization. Output is deterministic (object keys keep field
//! order), numbers use Rust's shortest round-trip float formatting, and
//! — unlike real serde_json, which writes `null` — non-finite floats are
//! rendered as bare `Infinity` / `-Infinity` / `NaN` tokens that the
//! parser accepts back, because trial records legitimately carry the
//! `+inf` failure sentinel.

use serde::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.iter(), |out, v, d| {
            write_value(out, v, indent, d);
        }),
        Value::Obj(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |out, (k, v), d| {
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if n.is_nan() {
        out.push_str("NaN");
    } else if n == f64::INFINITY {
        out.push_str("Infinity");
    } else if n == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // Rust's float Display is shortest-round-trip, so `str::parse`
        // on the other side recovers the exact value.
        out.push_str(&n.to_string());
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat("NaN") => Ok(Value::Num(f64::NAN)),
            Some(b'I') if self.eat("Infinity") => Ok(Value::Num(f64::INFINITY)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Num(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos += 1;
                    let escaped = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escaped {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    return self.parse_string_rest(out);
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Continues a string after the first escape (the common case of no
    /// escapes takes the borrow-only fast path above).
    fn parse_string_rest(&mut self, mut out: String) -> Result<String, Error> {
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escaped {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => {}
                b'.' | b'e' | b'E' | b'+' | b'-' => integral = false,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer literals parse exactly — a u64 fingerprint or seed must
        // not round through f64. Out-of-range integers (and anything with
        // a fraction or exponent) fall back to the float path, as does
        // "-0": it renders from the f64 -0.0 and must keep its sign bit.
        if integral && text != "-0" {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .ok()
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}
