//! Offline stand-in for the `rand` crate: same API surface as used by the
//! workspace, backed by a SplitMix64/xoshiro-style generator. Numbers differ
//! from upstream `rand`, but determinism (same seed -> same stream) holds.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SampleValue: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleValue for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_from(rng) as f32
    }
}

impl SampleValue for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                assert!(lo < hi_excl, "gen_range: empty range");
                let span = (hi_excl as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
        assert!(lo < hi_excl, "gen_range: empty range");
        lo + f64::sample_from(rng) * (hi_excl - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
        f64::sample_between(rng, lo as f64, hi_excl as f64) as f32
    }
}

pub trait RangeArg<T> {
    fn bounds(self) -> (T, T);
}

impl<T: Copy> RangeArg<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

pub trait Rng: RngCore {
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample_from(self)
    }

    fn gen_range<T: SampleUniform, Rg: RangeArg<T>>(&mut self, range: Rg) -> T {
        let (lo, hi) = range.bounds();
        T::sample_between(self, lo, hi)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — not the upstream ChaCha-based StdRng, but a sound
    /// deterministic 64-bit generator for offline builds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = StdRng { state };
            // Burn a couple of outputs so nearby seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}
