//! Facade: re-exports the full flaml-rs API.
pub use flaml_core::*;
