//! The paper's Section 5.3 application: selectivity estimation for a
//! query optimizer. FLAML searches for a regression model of
//! `ln(selectivity)` under a tight budget, directly optimizing the
//! 95th-percentile q-error, and is compared against the Manual
//! configuration of Dutt et al. (XGBoost, 16 trees, 16 leaves).
//!
//! ```text
//! cargo run --release --example selectivity
//! ```

use flaml::{fit_learner, AutoMl, LearnerKind};
use flaml_metrics::{q_error_quantile, Metric};
use flaml_search::Config;
use flaml_synth::{selectivity_dataset, TableDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-dimensional clustered table with 2000 labelled range queries.
    let workload = selectivity_dataset(
        "4D-Forest",
        TableDistribution::Forest,
        4,
        10_000,
        2_000,
        500,
        0,
    );
    println!(
        "workload {}: {} train queries, {} test queries",
        workload.name,
        workload.train.n_rows(),
        workload.test.n_rows()
    );

    // FLAML with the q-error quantile as a custom optimization metric.
    let result = AutoMl::new()
        .time_budget(3.0)
        .metric(Metric::QErrorP95)
        .seed(0)
        .fit(&workload.train)?;
    let pred = result.model.predict(&workload.test);
    let flaml_q = q_error_quantile(pred.values()?, workload.test.target(), 0.95)?;
    println!(
        "FLAML  : {} ({}) -> 95th-pct q-error {flaml_q:.2}",
        result.best_learner, result.best_config_rendered
    );

    // The Manual configuration recommended by Dutt et al.
    let kind = LearnerKind::XgBoost;
    let space = kind.space(workload.train.n_rows());
    let mut values: Vec<f64> = space.init_config().values().to_vec();
    values[space.index_of("tree_num").expect("param exists")] = 16.0;
    values[space.index_of("leaf_num").expect("param exists")] = 16.0;
    values[space.index_of("learning_rate").expect("param exists")] = 0.3;
    values[space.index_of("min_child_weight").expect("param exists")] = 1.0;
    let manual = fit_learner(
        kind,
        &workload.train,
        &Config::from(values),
        &space,
        0,
        None,
    )?;
    let pred = manual.predict(&workload.test);
    let manual_q = q_error_quantile(pred.values()?, workload.test.target(), 0.95)?;
    println!("Manual : xgboost 16 trees x 16 leaves -> 95th-pct q-error {manual_q:.2}");

    if flaml_q < manual_q {
        println!("FLAML beats the manual configuration (as in the paper's Table 4).");
    } else {
        println!("Manual config wins on this draw; rerun with a larger budget.");
    }
    Ok(())
}
