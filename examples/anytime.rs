//! Anytime behaviour: watch FLAML move from cheap trials on small samples
//! to expensive trials on the full data (the dynamics of Figure 1 and
//! Table 3), and inspect the per-learner ECI snapshots driving it.
//!
//! ```text
//! cargo run --release --example anytime
//! ```

use flaml::AutoMl;
use flaml_synth::{binary_suite, SuiteScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = binary_suite(SuiteScale::Small)
        .into_iter()
        .find(|d| d.name() == "higgs-like")
        .expect("suite contains higgs-like");
    println!(
        "dataset {}: {} rows x {} features",
        data.name(),
        data.n_rows(),
        data.n_features()
    );

    let result = AutoMl::new()
        .time_budget(3.0)
        .sample_size_init(200)
        .seed(0)
        .fit(&data)?;

    println!("\ntime    learner      sample  cost    best-error  (improving trials)");
    for t in result.trials.iter().filter(|t| t.improved_global) {
        println!(
            "{:6.2}s {:12} {:6}  {:6.3}s {:.4}",
            t.total_time, t.learner, t.sample_size, t.cost, t.best_error_so_far
        );
    }

    // The ECI snapshot after the last trial: the priorities FLAML ended
    // up assigning to each learner.
    if let Some(last) = result.trials.last() {
        println!("\nfinal ECI per learner (lower = higher priority):");
        for (learner, eci) in &last.eci_snapshot {
            println!("  {learner:12} {eci:10.3}");
        }
    }
    println!(
        "\nwinner: {} with {}",
        result.best_learner, result.best_config_rendered
    );
    Ok(())
}
