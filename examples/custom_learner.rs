//! The paper's `add_learner` API: registering a user-defined learner that
//! FLAML searches exactly like the builtins — ECI prioritization, FLOW²
//! over its declared space, and the sample-size schedule all apply.
//!
//! The custom learner here is a k-nearest-centroid classifier with one
//! searched hyperparameter (the number of centroids per class).
//!
//! ```text
//! cargo run --release --example custom_learner
//! ```

use flaml::{AutoMl, CustomLearner, LearnerKind};
use flaml_data::DatasetView;
use flaml_learners::{DynModel, FitError, FittedModel};
use flaml_metrics::Pred;
use flaml_search::{Config, Domain, ParamDef, SearchSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Nearest-centroid classifier: each class is summarized by `k` centroids
/// found by a few rounds of Lloyd's algorithm; prediction is a softmax
/// over negative distances to the nearest centroid of each class.
#[derive(Debug)]
struct NearestCentroids;

#[derive(Debug)]
struct CentroidModel {
    /// Per class: centroid coordinate vectors.
    centroids: Vec<Vec<Vec<f64>>>,
}

impl DynModel for CentroidModel {
    fn predict_dyn(&self, data: &DatasetView) -> Pred {
        let n = data.n_rows();
        let d = data.n_features();
        let k = self.centroids.len();
        let mut p = vec![0.0; n * k];
        for i in 0..n {
            let row: Vec<f64> = (0..d).map(|j| data.value(i, j)).collect();
            let mut weights = vec![0.0; k];
            for (c, class_centroids) in self.centroids.iter().enumerate() {
                let best = class_centroids
                    .iter()
                    .map(|cent| {
                        cent.iter()
                            .zip(&row)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                    })
                    .fold(f64::INFINITY, f64::min);
                weights[c] = (-best).exp().max(1e-12);
            }
            let total: f64 = weights.iter().sum();
            for c in 0..k {
                p[i * k + c] = weights[c] / total;
            }
        }
        Pred::Probs { n_classes: k, p }
    }
}

impl CustomLearner for NearestCentroids {
    fn name(&self) -> &str {
        "centroids"
    }

    fn space(&self, _n_rows: usize) -> SearchSpace {
        SearchSpace::new(vec![ParamDef::new(
            "k_per_class",
            Domain::log_int(1, 32),
            1.0,
        )])
        .expect("valid space")
    }

    fn cost_constant(&self) -> f64 {
        1.2
    }

    fn fit(
        &self,
        data: &DatasetView,
        config: &Config,
        space: &SearchSpace,
        seed: u64,
        _budget: Option<Duration>,
    ) -> Result<FittedModel, FitError> {
        let Some(n_classes) = data.task().n_classes() else {
            return Err(FitError::BadData("centroids is classification-only".into()));
        };
        let k = config.get(space, "k_per_class") as usize;
        let d = data.n_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let rows: Vec<usize> = (0..data.n_rows())
                .filter(|&i| data.target_at(i) as usize == c)
                .collect();
            if rows.is_empty() {
                return Err(FitError::BadData(format!("class {c} absent")));
            }
            // Initialize on random class members, then 5 Lloyd rounds.
            let mut cents: Vec<Vec<f64>> = (0..k.min(rows.len()))
                .map(|_| {
                    let r = rows[rng.gen_range(0..rows.len())];
                    (0..d).map(|j| data.value(r, j)).collect()
                })
                .collect();
            for _ in 0..5 {
                let mut sums = vec![vec![0.0; d]; cents.len()];
                let mut counts = vec![0usize; cents.len()];
                for &r in &rows {
                    let row: Vec<f64> = (0..d).map(|j| data.value(r, j)).collect();
                    let nearest = cents
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            let da: f64 =
                                a.1.iter().zip(&row).map(|(x, y)| (x - y) * (x - y)).sum();
                            let db: f64 =
                                b.1.iter().zip(&row).map(|(x, y)| (x - y) * (x - y)).sum();
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty centroids");
                    for j in 0..d {
                        sums[nearest][j] += row[j];
                    }
                    counts[nearest] += 1;
                }
                for (cent, (sum, count)) in cents.iter_mut().zip(sums.iter().zip(&counts)) {
                    if *count > 0 {
                        for j in 0..d {
                            cent[j] = sum[j] / *count as f64;
                        }
                    }
                }
            }
            centroids.push(cents);
        }
        Ok(FittedModel::Custom(Arc::new(CentroidModel { centroids })))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ring-shaped classes: centroids with enough k can tile the rings.
    let data = flaml_synth::rings(
        3,
        flaml_synth::ClassSpec {
            n: 3000,
            seed: 11,
            ..flaml_synth::ClassSpec::default()
        },
    );

    let result = AutoMl::new()
        .time_budget(2.0)
        .estimators([LearnerKind::Lr]) // weak builtin on rings
        .add_learner(Arc::new(NearestCentroids))
        .seed(0)
        .fit(&data)?;

    println!("winner      : {}", result.best_learner);
    println!("best config : {}", result.best_config_rendered);
    println!(
        "validation  : {} = {:.4}",
        result.metric, -result.best_error
    );
    let tried_custom = result
        .trials
        .iter()
        .filter(|t| t.learner == "centroids")
        .count();
    println!(
        "custom learner trials: {tried_custom} of {}",
        result.trials.len()
    );
    Ok(())
}
