//! Customization: restricting the estimator list and optimizing a
//! non-default metric, mirroring the paper's
//! `automl.fit(..., metric=mymetric, estimator_list=['mylearner','xgboost'])`.
//!
//! The task is imbalanced (6% positives), where optimizing accuracy is
//! misleading; we compare searches driven by log-loss and by roc-auc.
//!
//! ```text
//! cargo run --release --example custom_metric
//! ```

use flaml::{AutoMl, LearnerKind};
use flaml_metrics::Metric;
use flaml_synth::{imbalanced, ClassSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = imbalanced(
        0.06,
        ClassSpec {
            n: 5000,
            seed: 3,
            ..ClassSpec::default()
        },
    );
    let shuffled = data.shuffled(0);
    let train = shuffled.prefix(4000);
    let test = shuffled.select(&(4000..5000).collect::<Vec<_>>());

    for metric in [Metric::LogLoss, Metric::RocAuc] {
        let result = AutoMl::new()
            .time_budget(1.5)
            .metric(metric)
            .estimators([LearnerKind::LightGbm, LearnerKind::XgBoost, LearnerKind::Lr])
            .seed(1)
            .fit(&train)?;
        let pred = result.model.predict(&test);
        println!(
            "optimized {metric:9} -> best {} | test auc {:.4} | test log-loss {:.4}",
            result.best_learner,
            Metric::RocAuc.score(&pred, test.target())?,
            -Metric::LogLoss.score(&pred, test.target())?,
        );
    }
    Ok(())
}
