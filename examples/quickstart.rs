//! Quickstart: the scikit-learn-style `fit` of the paper's Section 3 on a
//! synthetic binary-classification task.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flaml::{AutoMl, LearnerKind};
use flaml_data::{Dataset, Task};
use flaml_metrics::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A noisy non-linear task: y = 1 inside a disc, with label noise.
    let n = 4000;
    let mut rng = StdRng::seed_from_u64(7);
    let x0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let x1: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let inside = x0[i] * x0[i] + x1[i] * x1[i] < 0.5;
            let flip = rng.gen::<f64>() < 0.05;
            f64::from(inside != flip)
        })
        .collect();
    let data = Dataset::new("disc", Task::Binary, vec![x0, x1], y)?;

    // Split off a test set the search never sees.
    let shuffled = data.shuffled(0);
    let train = shuffled.prefix(3200);
    let test = shuffled.select(&(3200..n).collect::<Vec<_>>());

    // `fit` with a 2-second budget — everything else is automatic:
    // resampling strategy, learner choice, hyperparameters, sample size.
    let result = AutoMl::new().time_budget(2.0).seed(42).fit(&train)?;

    println!("best learner : {}", result.best_learner);
    println!("best config  : {}", result.best_config_rendered);
    println!(
        "validation   : {} = {:.4}",
        result.metric,
        1.0 - result.best_error
    );
    println!("strategy     : {}", result.strategy);
    println!("trials run   : {}", result.trials.len());

    let pred = result.model.predict(&test);
    let auc = Metric::RocAuc.score(&pred, test.target())?;
    let acc = Metric::Accuracy.score(&pred, test.target())?;
    println!("test auc     : {auc:.4}");
    println!("test accuracy: {acc:.4}");

    // The estimator list is just as easy to restrict (paper Section 3):
    let gbm_only = AutoMl::new()
        .time_budget(1.0)
        .estimators([LearnerKind::LightGbm, LearnerKind::XgBoost])
        .seed(42)
        .fit(&train)?;
    println!(
        "gbm-only run : {} ({:.4})",
        gbm_only.best_learner,
        1.0 - gbm_only.best_error
    );
    Ok(())
}
