//! Workspace-level integration tests: the facade crate, the full pipeline
//! from synthetic data through FLAML and the baselines to scaled scores.

use flaml::{default_virtual_cost, AutoMl, LearnerKind, TimeSource};
use flaml_baselines::{calibration_anchors, run_baseline, BaselineKind, BaselineSettings};
use flaml_metrics::{scaled_score, Metric};
use flaml_synth::{
    binary_suite, regression_suite, selectivity_dataset, SuiteScale, TableDistribution,
};

fn virtual_source() -> TimeSource {
    TimeSource::Virtual(default_virtual_cost)
}

#[test]
fn facade_reexports_the_core_api() {
    // Compiles = passes: the facade exposes the public API surface.
    let _ = AutoMl::new()
        .time_budget(1.0)
        .estimators([LearnerKind::LightGbm, LearnerKind::XgBoost]);
}

#[test]
fn flaml_beats_the_constant_baseline_on_suite_data() {
    let data = &binary_suite(SuiteScale::Small)[1]; // credit-like blobs
    let shuffled = data.shuffled(0);
    let cut = data.n_rows() * 4 / 5;
    let train = shuffled.prefix(cut);
    let test = shuffled.select(&(cut..data.n_rows()).collect::<Vec<_>>());

    let result = AutoMl::new()
        .time_budget(1.0)
        .max_trials(40)
        .sample_size_init(100)
        .time_source(virtual_source())
        .seed(0)
        .fit(&train)
        .expect("flaml runs");
    let metric = Metric::default_for(data.task());
    let anchors = calibration_anchors(&train, &test, metric, 0.5, 0, virtual_source(), Some(6))
        .expect("anchors");
    let raw = metric
        .score(&result.model.predict(&test), test.target())
        .expect("score");
    let scaled = scaled_score(raw, anchors);
    assert!(
        scaled > 0.0,
        "FLAML must beat the constant predictor (scaled {scaled})"
    );
}

#[test]
fn flaml_and_bohb_share_the_trial_record_format() {
    let data = &regression_suite(SuiteScale::Small)[0];
    let flaml = AutoMl::new()
        .time_budget(0.5)
        .max_trials(10)
        .sample_size_init(100)
        .time_source(virtual_source())
        .fit(data)
        .expect("flaml");
    let bohb = run_baseline(
        BaselineKind::Bohb,
        data,
        &BaselineSettings {
            time_budget: 0.5,
            max_trials: Some(10),
            sample_size_min: 100,
            time_source: virtual_source(),
            ..BaselineSettings::default()
        },
    )
    .expect("bohb");
    for t in flaml.trials.iter().chain(bohb.trials.iter()) {
        assert!(t.cost > 0.0);
        assert!(t.total_time > 0.0);
        assert!(t.sample_size > 0);
    }
    // Regression default metric is r2 for both.
    assert_eq!(flaml.metric, Metric::R2);
    assert_eq!(bohb.metric, Metric::R2);
}

#[test]
fn selectivity_pipeline_end_to_end() {
    let w = selectivity_dataset("2D-T", TableDistribution::Tpch, 2, 1500, 250, 80, 0);
    let result = AutoMl::new()
        .time_budget(0.5)
        .max_trials(15)
        .metric(Metric::QErrorP95)
        .sample_size_init(100)
        .time_source(virtual_source())
        .fit(&w.train)
        .expect("flaml on selectivity");
    let pred = result.model.predict(&w.test);
    let q =
        flaml_metrics::q_error_quantile(pred.values().expect("regression"), w.test.target(), 0.95)
            .expect("q-error");
    assert!(q >= 1.0);
    assert!(q.is_finite());
    // A sane model should land far below the worst case exp(|ln floor|).
    assert!(q < 100.0, "95th-pct q-error {q} is absurd");
}

#[test]
fn ablations_produce_distinct_traces() {
    use flaml::{LearnerSelection, ResampleChoice};
    let data = &binary_suite(SuiteScale::Small)[0];
    let base = AutoMl::new()
        .time_budget(0.5)
        .max_trials(12)
        .sample_size_init(50)
        .time_source(virtual_source())
        .seed(3);
    let flaml = base.clone().fit(data).expect("flaml");
    let fulldata = base.clone().sampling(false).fit(data).expect("fulldata");
    let rr = base
        .clone()
        .learner_selection(LearnerSelection::RoundRobin)
        .fit(data)
        .expect("roundrobin");
    let cv = base
        .clone()
        .resample(ResampleChoice::AlwaysCv)
        .fit(data)
        .expect("cv");
    assert!(fulldata
        .trials
        .iter()
        .all(|t| t.sample_size == data.n_rows()));
    assert!(flaml.trials.iter().any(|t| t.sample_size < data.n_rows()));
    assert!(rr.trials.iter().all(|t| t.eci_snapshot.is_empty()));
    assert!(matches!(cv.strategy, flaml::ResampleStrategy::Cv { .. }));
}

#[test]
fn ensemble_through_the_facade() {
    let data = &binary_suite(SuiteScale::Small)[1];
    let result = AutoMl::new()
        .time_budget(1.0)
        .max_trials(25)
        .sample_size_init(100)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf, LearnerKind::Lr])
        .ensemble(true)
        .time_source(virtual_source())
        .seed(5)
        .fit(data)
        .expect("ensemble run");
    // With three viable learners the result should be a stacked model
    // whose predictions are valid probabilities.
    if let flaml_learners::FittedModel::Stacked(s) = &result.model {
        assert!(s.n_members() >= 2);
    }
    let pred = result.model.predict(data);
    for p in pred.positive_scores().expect("binary probabilities") {
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn feature_importance_exposed_on_results() {
    let data = &binary_suite(SuiteScale::Small)[0];
    let result = AutoMl::new()
        .time_budget(0.5)
        .max_trials(10)
        .sample_size_init(100)
        .estimators([LearnerKind::LightGbm, LearnerKind::Rf])
        .time_source(virtual_source())
        .seed(6)
        .fit(data)
        .expect("run");
    let imp = result
        .model
        .feature_importance()
        .expect("tree models expose importance");
    assert_eq!(imp.len(), data.n_features());
    assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9 || imp.iter().all(|&v| v == 0.0));
}

#[test]
fn trial_records_serialize_to_json() {
    let data = &binary_suite(SuiteScale::Small)[0];
    let result = AutoMl::new()
        .time_budget(0.3)
        .max_trials(5)
        .sample_size_init(100)
        .time_source(virtual_source())
        .seed(7)
        .fit(data)
        .expect("run");
    // TrialRecord derives Serialize: round-trip through JSON.
    let json = serde_json::to_string(&result.trials).expect("serialize");
    let back: Vec<flaml::TrialRecord> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), result.trials.len());
    assert_eq!(back[0].learner, result.trials[0].learner);
}
